//! Bottom-up evaluation of FO+ — first-order logic with linear constraints.
//!
//! FO+ adds a built-in addition to FO; by \[Tar51\] it can still be evaluated
//! bottom-up in closed form, which in the linear fragment means each
//! connective maps to the [`LinRelation`] algebra and `∃` to Fourier–Motzkin
//! elimination. §4 of the paper shows FO+ has NC data complexity in general
//! and uniform AC⁰ over inputs defined with integers (Theorem 4.1); the E1
//! experiment measures the latter's scaling shape on this evaluator.
//!
//! The paper also notes FO+ mappings need not be *queries* (closed under
//! automorphisms of Q) — e.g. `x + y = 1` is not automorphism-invariant;
//! the genericity harness of `dco-fo` exposes this on concrete formulas.

use crate::atom::{LinAtom, NormalizedAtom};
use crate::relation::LinRelation;
use crate::tuple::LinTuple;
use dco_core::prelude::{CompOp, Database, Rational, RawOp};
use dco_logic::{ArgTerm, Formula, LinExpr};
use std::collections::BTreeSet;
use std::fmt;

/// Errors during FO+ evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinEvalError {
    /// Unknown predicate.
    UnknownPredicate(String),
    /// Arity mismatch.
    ArityMismatch {
        /// Predicate name.
        name: String,
        /// Declared arity.
        declared: u32,
        /// Used arity.
        used: u32,
    },
}

impl fmt::Display for LinEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinEvalError::UnknownPredicate(n) => write!(f, "unknown predicate {n}"),
            LinEvalError::ArityMismatch {
                name,
                declared,
                used,
            } => {
                write!(
                    f,
                    "predicate {name}: declared arity {declared}, used at {used}"
                )
            }
        }
    }
}

impl std::error::Error for LinEvalError {}

/// FO+ query result: named columns plus the linear relation over them.
#[derive(Debug, Clone)]
pub struct LinQueryResult {
    /// Output column names in order.
    pub columns: Vec<String>,
    /// The denoted relation.
    pub relation: LinRelation,
}

impl LinQueryResult {
    /// Boolean value for sentences.
    pub fn as_bool(&self) -> Option<bool> {
        if self.columns.is_empty() {
            Some(!self.relation.is_empty())
        } else {
            None
        }
    }
}

/// Evaluate an FO+ formula; output columns are free variables sorted.
pub fn eval_linear(db: &Database, formula: &Formula) -> Result<LinQueryResult, LinEvalError> {
    let columns: Vec<String> = formula.free_vars().into_iter().collect();
    let relation = eval_ctx(db, formula, &columns)?;
    Ok(LinQueryResult { columns, relation })
}

/// Parse + evaluate.
pub fn eval_linear_str(
    db: &Database,
    src: &str,
) -> Result<LinQueryResult, Box<dyn std::error::Error>> {
    let f = dco_logic::parse_formula(src)?;
    Ok(eval_linear(db, &f)?)
}

fn eval_ctx(db: &Database, formula: &Formula, ctx: &[String]) -> Result<LinRelation, LinEvalError> {
    let k = ctx.len() as u32;
    match formula {
        Formula::True => Ok(LinRelation::universe(k)),
        Formula::False => Ok(LinRelation::empty(k)),
        Formula::Compare(l, op, r) => Ok(compare(l, *op, r, ctx)),
        Formula::Pred(name, args) => pred(db, name, args, ctx),
        Formula::Not(f) => Ok(eval_ctx(db, f, ctx)?.complement()),
        Formula::And(fs) => {
            let mut acc = LinRelation::universe(k);
            for f in fs {
                acc = acc.intersect(&eval_ctx(db, f, ctx)?);
                if acc.is_empty() {
                    break;
                }
            }
            Ok(acc)
        }
        Formula::Or(fs) => {
            let mut acc = LinRelation::empty(k);
            for f in fs {
                acc = acc.union(&eval_ctx(db, f, ctx)?);
            }
            Ok(acc)
        }
        Formula::Implies(a, b) => Ok(eval_ctx(db, a, ctx)?
            .complement()
            .union(&eval_ctx(db, b, ctx)?)),
        Formula::Iff(a, b) => {
            let ra = eval_ctx(db, a, ctx)?;
            let rb = eval_ctx(db, b, ctx)?;
            Ok(ra
                .intersect(&rb)
                .union(&ra.complement().intersect(&rb.complement())))
        }
        Formula::Exists(vs, body) => {
            let (fresh, body) = freshen(vs, body, ctx);
            let mut ctx2 = ctx.to_vec();
            ctx2.extend(fresh);
            let mut r = eval_ctx(db, &body, &ctx2)?;
            for j in (ctx.len()..ctx2.len()).rev() {
                r = r.project_out(j);
            }
            Ok(r.narrow(k))
        }
        Formula::Forall(vs, body) => {
            let inner = Formula::Exists(vs.clone(), Box::new(Formula::not((**body).clone())));
            Ok(eval_ctx(db, &inner, ctx)?.complement())
        }
    }
}

/// Translate a comparison of linear expressions to a (possibly split)
/// relation over the context columns.
fn compare(l: &LinExpr, op: RawOp, r: &LinExpr, ctx: &[String]) -> LinRelation {
    let k = ctx.len() as u32;
    // l - r (op) 0
    let mut coeffs = vec![Rational::ZERO; ctx.len()];
    let mut constant = l.constant;
    for (v, c) in &l.coeffs {
        let i = ctx.iter().position(|x| x == v).expect("free var in ctx");
        coeffs[i] = &coeffs[i] + c;
    }
    for (v, c) in &r.coeffs {
        let i = ctx.iter().position(|x| x == v).expect("free var in ctx");
        coeffs[i] = &coeffs[i] - c;
    }
    constant = constant - r.constant;

    let make = |coeffs: Vec<Rational>, constant: Rational, op: CompOp| -> Option<LinTuple> {
        match LinAtom::normalize(coeffs, constant, op) {
            NormalizedAtom::True => Some(LinTuple::top(k)),
            NormalizedAtom::False => None,
            NormalizedAtom::Atom(a) => Some(LinTuple::from_atoms(k, [a])),
        }
    };
    let neg = |coeffs: &[Rational], constant: &Rational| -> (Vec<Rational>, Rational) {
        (coeffs.iter().map(|c| -*c).collect(), -*constant)
    };
    let tuples: Vec<Option<LinTuple>> = match op {
        RawOp::Lt => vec![make(coeffs, constant, CompOp::Lt)],
        RawOp::Le => vec![make(coeffs, constant, CompOp::Le)],
        RawOp::Eq => vec![make(coeffs, constant, CompOp::Eq)],
        RawOp::Gt => {
            let (c, kst) = neg(&coeffs, &constant);
            vec![make(c, kst, CompOp::Lt)]
        }
        RawOp::Ge => {
            let (c, kst) = neg(&coeffs, &constant);
            vec![make(c, kst, CompOp::Le)]
        }
        RawOp::Ne => {
            let (c2, k2) = neg(&coeffs, &constant);
            vec![make(coeffs, constant, CompOp::Lt), make(c2, k2, CompOp::Lt)]
        }
    };
    LinRelation::from_tuples(k, tuples.into_iter().flatten())
}

fn pred(
    db: &Database,
    name: &str,
    args: &[ArgTerm],
    ctx: &[String],
) -> Result<LinRelation, LinEvalError> {
    let rel = db
        .get(name)
        .ok_or_else(|| LinEvalError::UnknownPredicate(name.to_string()))?;
    let declared = rel.arity();
    if declared as usize != args.len() {
        return Err(LinEvalError::ArityMismatch {
            name: name.to_string(),
            declared,
            used: args.len() as u32,
        });
    }
    let k = ctx.len() as u32;
    let total = k + declared;
    let mut r = LinRelation::from_dense(rel).rename(total, |v| v + k);
    // Link arguments: pred column k+j = arg.
    for (j, arg) in args.iter().enumerate() {
        let col = k + j as u32;
        let mut coeffs = vec![Rational::ZERO; total as usize];
        coeffs[col as usize] = Rational::ONE;
        let constant = match arg {
            ArgTerm::Const(c) => -*c,
            ArgTerm::Var(v) => {
                let i = ctx.iter().position(|c| c == v).expect("free var in ctx");
                coeffs[i] = coeffs[i] - Rational::ONE;
                Rational::ZERO
            }
        };
        match LinAtom::normalize(coeffs, constant, CompOp::Eq) {
            NormalizedAtom::True => {}
            NormalizedAtom::False => return Ok(LinRelation::empty(k)),
            NormalizedAtom::Atom(a) => {
                r = r.intersect(&LinRelation::from_tuples(
                    total,
                    [LinTuple::from_atoms(total, [a])],
                ));
            }
        }
    }
    for j in (k..total).rev() {
        r = r.project_out(j as usize);
    }
    Ok(r.narrow(k))
}

/// Alpha-rename quantified variables colliding with the context.
fn freshen(vs: &[String], body: &Formula, ctx: &[String]) -> (Vec<String>, Formula) {
    let mut taken: BTreeSet<String> = ctx.iter().cloned().collect();
    let mut out_vs = Vec::with_capacity(vs.len());
    let mut out_body = body.clone();
    for v in vs {
        if taken.contains(v) {
            let mut i = 1;
            let fresh = loop {
                let cand = format!("{v}_{i}");
                if !taken.contains(&cand) && !vs.contains(&cand) {
                    break cand;
                }
                i += 1;
            };
            out_body = rename_free(&out_body, v, &fresh);
            taken.insert(fresh.clone());
            out_vs.push(fresh);
        } else {
            taken.insert(v.clone());
            out_vs.push(v.clone());
        }
    }
    (out_vs, out_body)
}

fn rename_free(f: &Formula, from: &str, to: &str) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Compare(l, op, r) => {
            Formula::Compare(l.rename_var(from, to), *op, r.rename_var(from, to))
        }
        Formula::Pred(name, args) => Formula::Pred(
            name.clone(),
            args.iter()
                .map(|a| match a {
                    ArgTerm::Var(v) if v == from => ArgTerm::Var(to.to_string()),
                    other => other.clone(),
                })
                .collect(),
        ),
        Formula::Not(x) => Formula::not(rename_free(x, from, to)),
        Formula::And(fs) => Formula::And(fs.iter().map(|x| rename_free(x, from, to)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|x| rename_free(x, from, to)).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(rename_free(a, from, to)),
            Box::new(rename_free(b, from, to)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(rename_free(a, from, to)),
            Box::new(rename_free(b, from, to)),
        ),
        Formula::Exists(vs, body) => {
            if vs.iter().any(|v| v == from) {
                f.clone()
            } else {
                Formula::Exists(vs.clone(), Box::new(rename_free(body, from, to)))
            }
        }
        Formula::Forall(vs, body) => {
            if vs.iter().any(|v| v == from) {
                f.clone()
            } else {
                Formula::Forall(vs.clone(), Box::new(rename_free(body, from, to)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::prelude::*;

    fn pt(v: &[i64]) -> Vec<Rational> {
        v.iter().map(|&x| rat(x as i128, 1)).collect()
    }

    fn run(db: &Database, src: &str) -> LinQueryResult {
        eval_linear_str(db, src).unwrap()
    }

    fn empty_db() -> Database {
        Database::new(Schema::new())
    }

    #[test]
    fn linear_atom_halfplane() {
        let q = run(&empty_db(), "x + y < 1");
        assert!(q.relation.contains_point(&pt(&[0, 0])));
        assert!(!q.relation.contains_point(&pt(&[1, 1])));
    }

    #[test]
    fn midpoint_definable_in_foplus() {
        // m is the midpoint of x and y: m + m = x + y
        let q = run(&empty_db(), "m + m = x + y");
        assert_eq!(q.columns, vec!["m", "x", "y"]);
        assert!(q.relation.contains_point(&pt(&[1, 0, 2])));
        assert!(!q.relation.contains_point(&pt(&[2, 0, 2])));
    }

    #[test]
    fn exists_midpoint_always_true() {
        let q = run(&empty_db(), "forall x y . exists m . m + m = x + y");
        assert_eq!(q.as_bool(), Some(true));
    }

    #[test]
    fn predicate_over_dense_input() {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        let db = Database::new(Schema::new().with("R", 2)).with("R", tri);
        // sum-bounded part of the triangle
        let q = run(&db, "R(x, y) & x + y <= 5");
        assert!(q.relation.contains_point(&pt(&[1, 2])));
        assert!(!q.relation.contains_point(&pt(&[3, 4]))); // in R but sum > 5
        assert!(!q.relation.contains_point(&pt(&[4, 3]))); // not in R
    }

    #[test]
    fn ne_splits() {
        let q = run(&empty_db(), "x + x != 2");
        assert!(!q.relation.contains_point(&pt(&[1])));
        assert!(q.relation.contains_point(&pt(&[0])));
        assert!(q.relation.contains_point(&pt(&[2])));
    }

    #[test]
    fn forall_with_arithmetic() {
        // "every x is strictly below x + 1" — true
        let q = run(&empty_db(), "forall x . x < x + 1");
        assert_eq!(q.as_bool(), Some(true));
        // "some x equals x + 1" — false
        let q = run(&empty_db(), "exists x . x = x + 1");
        assert_eq!(q.as_bool(), Some(false));
    }

    #[test]
    fn scaling_coefficients() {
        let q = run(&empty_db(), "2*x <= y & y <= 3*x");
        assert!(q.relation.contains_point(&pt(&[1, 2])));
        assert!(q.relation.contains_point(&pt(&[1, 3])));
        assert!(!q.relation.contains_point(&pt(&[1, 4])));
        assert!(!q.relation.contains_point(&pt(&[1, 1])));
    }

    #[test]
    fn fo_fragment_agrees_with_fo_evaluator() {
        // An order query evaluated by both engines must agree.
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        let db = Database::new(Schema::new().with("R", 2)).with("R", tri);
        let src = "exists y . (R(x, y) & x < y)";
        let lin = run(&db, src).relation.to_dense().expect("order query");
        let fo = dco_fo_eval(&db, src);
        assert!(lin.equivalent(&fo));
    }

    // tiny local shim to avoid a dev-dependency cycle: re-evaluate via the
    // same parse tree using dco-fo would require depending on it; instead
    // compare against a hand-built expected relation.
    fn dco_fo_eval(_db: &Database, _src: &str) -> GeneralizedRelation {
        // ∃y. R(x,y) ∧ x < y over the triangle = [0, 10) on x
        GeneralizedRelation::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(rat(10, 1))),
            ],
        )
    }

    #[test]
    fn unknown_pred_error() {
        let f = dco_logic::parse_formula("Zap(x)").unwrap();
        assert!(matches!(
            eval_linear(&empty_db(), &f),
            Err(LinEvalError::UnknownPredicate(_))
        ));
    }
}
