//! Linear atomic constraints `Σ aᵢ·xᵢ + c  ρ  0` with `ρ ∈ {<, ≤, =}`.
//!
//! FO+ (Section 4 of the paper) extends the dense-order language with a
//! built-in addition. Its atoms compare linear combinations of variables
//! with rational coefficients. We keep every atom in the homogeneous form
//! `expr ρ 0`; positive rescaling is factored out by normalization so that
//! syntactically equal atoms are logically equal.

use dco_core::prelude::{CompOp, Rational};

use std::fmt;

/// A linear atom over columns `0..arity`: `Σ coeffs[i]·xᵢ + constant  op  0`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinAtom {
    /// Dense per-column coefficients (length = arity).
    coeffs: Vec<Rational>,
    /// Constant term.
    constant: Rational,
    /// Comparison against zero.
    op: CompOp,
}

/// Result of normalizing a candidate atom.
pub enum NormalizedAtom {
    /// Trivially true (e.g. `-1 < 0`).
    True,
    /// Trivially false (e.g. `1 ≤ 0`).
    False,
    /// A genuine constraint.
    Atom(LinAtom),
}

impl LinAtom {
    /// Normalize `Σ coeffs·x + constant op 0`.
    ///
    /// * decides variable-free atoms;
    /// * rescales by the absolute value of the first nonzero coefficient
    ///   (positive factor — preserves the relation);
    /// * for equalities additionally fixes the sign of the first nonzero
    ///   coefficient to be positive.
    pub fn normalize(coeffs: Vec<Rational>, constant: Rational, op: CompOp) -> NormalizedAtom {
        match coeffs.iter().find(|c| !c.is_zero()) {
            None => {
                let holds = match op {
                    CompOp::Lt => constant.is_negative(),
                    CompOp::Le => !constant.is_positive(),
                    CompOp::Eq => constant.is_zero(),
                };
                if holds {
                    NormalizedAtom::True
                } else {
                    NormalizedAtom::False
                }
            }
            Some(first) => {
                let scale = if op == CompOp::Eq {
                    *first
                } else {
                    first.abs()
                };
                let inv = scale.recip().expect("nonzero");
                let coeffs = coeffs.iter().map(|c| c * &inv).collect();
                let constant = constant * inv;
                NormalizedAtom::Atom(LinAtom {
                    coeffs,
                    constant,
                    op,
                })
            }
        }
    }

    /// Build (panicking on trivial truth/falsity — callers that may hit the
    /// trivial cases should use [`LinAtom::normalize`]).
    pub fn new(coeffs: Vec<Rational>, constant: Rational, op: CompOp) -> LinAtom {
        match LinAtom::normalize(coeffs, constant, op) {
            NormalizedAtom::Atom(a) => a,
            _ => panic!("trivial linear atom"),
        }
    }

    /// Per-column coefficients.
    pub fn coeffs(&self) -> &[Rational] {
        &self.coeffs
    }

    /// Constant term.
    pub fn constant(&self) -> &Rational {
        &self.constant
    }

    /// Comparison operator (against zero).
    pub fn op(&self) -> CompOp {
        self.op
    }

    /// Number of columns.
    pub fn arity(&self) -> u32 {
        self.coeffs.len() as u32
    }

    /// Evaluate at a point.
    pub fn eval(&self, point: &[Rational]) -> bool {
        let mut acc = self.constant;
        for (c, x) in self.coeffs.iter().zip(point) {
            if !c.is_zero() {
                acc = acc + (c * x);
            }
        }
        match self.op {
            CompOp::Lt => acc.is_negative(),
            CompOp::Le => !acc.is_positive(),
            CompOp::Eq => acc.is_zero(),
        }
    }

    /// Does the atom mention column `j`?
    pub fn mentions(&self, j: usize) -> bool {
        !self.coeffs[j].is_zero()
    }

    /// The coefficient of column `j`.
    pub fn coeff(&self, j: usize) -> &Rational {
        &self.coeffs[j]
    }

    /// Negations: `¬(e<0) = -e ≤ 0`, `¬(e≤0) = -e < 0`,
    /// `¬(e=0) = e < 0 ∨ -e < 0`. Returns the disjuncts.
    pub fn negate(&self) -> Vec<LinAtom> {
        let neg = |a: &LinAtom| -> (Vec<Rational>, Rational) {
            (a.coeffs.iter().map(|c| -*c).collect(), -a.constant)
        };
        match self.op {
            CompOp::Lt => {
                let (c, k) = neg(self);
                vec![LinAtom::new(c, k, CompOp::Le)]
            }
            CompOp::Le => {
                let (c, k) = neg(self);
                vec![LinAtom::new(c, k, CompOp::Lt)]
            }
            CompOp::Eq => {
                let (c, k) = neg(self);
                vec![
                    LinAtom::new(self.coeffs.clone(), self.constant, CompOp::Lt),
                    LinAtom::new(c, k, CompOp::Lt),
                ]
            }
        }
    }

    /// `self + factor·other` (same arity), used by Fourier–Motzkin and
    /// equality substitution. The operator of the result must be supplied.
    pub fn combine(&self, other: &LinAtom, factor: &Rational, op: CompOp) -> NormalizedAtom {
        let coeffs: Vec<Rational> = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(a, b)| a + &(b * factor))
            .collect();
        let constant = self.constant + (&other.constant * factor);
        LinAtom::normalize(coeffs, constant, op)
    }

    /// Widen to a larger arity (new columns get coefficient 0).
    pub fn widen(&self, new_arity: u32) -> LinAtom {
        assert!(new_arity as usize >= self.coeffs.len());
        let mut coeffs = self.coeffs.clone();
        coeffs.resize(new_arity as usize, Rational::ZERO);
        LinAtom {
            coeffs,
            constant: self.constant,
            op: self.op,
        }
    }

    /// Apply a column permutation/injection `f: old column → new column`
    /// into a target arity.
    pub fn rename(&self, new_arity: u32, f: impl Fn(u32) -> u32) -> LinAtom {
        let mut coeffs = vec![Rational::ZERO; new_arity as usize];
        for (i, c) in self.coeffs.iter().enumerate() {
            if !c.is_zero() {
                let j = f(i as u32) as usize;
                coeffs[j] = &coeffs[j] + c;
            }
        }
        LinAtom {
            coeffs,
            constant: self.constant,
            op: self.op,
        }
    }

    /// Is this a pure order atom (at most two nonzero coefficients, each
    /// ±1 and opposite, or a single ±1)? Such atoms are expressible in the
    /// dense-order fragment.
    pub fn is_order_atom(&self) -> bool {
        let nz: Vec<&Rational> = self.coeffs.iter().filter(|c| !c.is_zero()).collect();
        match nz.len() {
            1 => nz[0].abs() == Rational::ONE,
            2 => {
                nz[0].abs() == Rational::ONE
                    && nz[1].abs() == Rational::ONE
                    && *nz[0] == -*nz[1]
                    && self.constant.is_zero()
            }
            _ => false,
        }
    }
}

impl fmt::Display for LinAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if first {
                if *c == Rational::ONE {
                    write!(f, "x{i}")?;
                } else if *c == Rational::from_int(-1) {
                    write!(f, "-x{i}")?;
                } else {
                    write!(f, "{c}*x{i}")?;
                }
                first = false;
            } else if c.is_negative() {
                let a = c.abs();
                if a == Rational::ONE {
                    write!(f, " - x{i}")?;
                } else {
                    write!(f, " - {a}*x{i}")?;
                }
            } else if *c == Rational::ONE {
                write!(f, " + x{i}")?;
            } else {
                write!(f, " + {c}*x{i}")?;
            }
        }
        if self.constant.is_positive() {
            write!(f, " + {}", self.constant)?;
        } else if self.constant.is_negative() {
            write!(f, " - {}", self.constant.abs())?;
        }
        write!(f, " {} 0", self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::prelude::rat;

    fn atom(coeffs: &[i64], k: i64, op: CompOp) -> LinAtom {
        LinAtom::new(
            coeffs.iter().map(|&c| rat(c as i128, 1)).collect(),
            rat(k as i128, 1),
            op,
        )
    }

    #[test]
    fn trivial_atoms_decided() {
        assert!(matches!(
            LinAtom::normalize(vec![rat(0, 1)], rat(-1, 1), CompOp::Lt),
            NormalizedAtom::True
        ));
        assert!(matches!(
            LinAtom::normalize(vec![rat(0, 1)], rat(0, 1), CompOp::Lt),
            NormalizedAtom::False
        ));
        assert!(matches!(
            LinAtom::normalize(vec![rat(0, 1)], rat(0, 1), CompOp::Le),
            NormalizedAtom::True
        ));
    }

    #[test]
    fn normalization_rescales() {
        // 2x + 4 <= 0  and  x + 2 <= 0 are the same atom
        let a = atom(&[2], 4, CompOp::Le);
        let b = atom(&[1], 2, CompOp::Le);
        assert_eq!(a, b);
        // equalities also fix the sign: -x + 1 = 0 ≡ x - 1 = 0
        let c = atom(&[-1], 1, CompOp::Eq);
        let d = atom(&[1], -1, CompOp::Eq);
        assert_eq!(c, d);
        // inequalities must NOT flip sign: -x < 0 ≠ x < 0
        let e = atom(&[-1], 0, CompOp::Lt);
        let f = atom(&[1], 0, CompOp::Lt);
        assert_ne!(e, f);
    }

    #[test]
    fn eval_halfplane() {
        // x + y - 1 < 0
        let a = atom(&[1, 1], -1, CompOp::Lt);
        assert!(a.eval(&[rat(0, 1), rat(0, 1)]));
        assert!(!a.eval(&[rat(1, 2), rat(1, 2)]));
        assert!(!a.eval(&[rat(1, 1), rat(1, 1)]));
    }

    #[test]
    fn negation_complements() {
        let a = atom(&[1, -2], 3, CompOp::Le);
        let neg = a.negate();
        for p in [
            [rat(0, 1), rat(0, 1)],
            [rat(0, 1), rat(2, 1)],
            [rat(-3, 1), rat(0, 1)],
            [rat(1, 1), rat(2, 1)],
        ] {
            let v = a.eval(&p);
            let nv = neg.iter().any(|n| n.eval(&p));
            assert_eq!(v, !nv, "{p:?}");
        }
        // equality negation has two disjuncts
        let e = atom(&[1], -1, CompOp::Eq);
        assert_eq!(e.negate().len(), 2);
    }

    #[test]
    fn order_atom_detection() {
        assert!(atom(&[1, -1], 0, CompOp::Lt).is_order_atom()); // x < y
        assert!(atom(&[1, 0], -3, CompOp::Le).is_order_atom()); // x <= 3
        assert!(!atom(&[1, 1], 0, CompOp::Lt).is_order_atom()); // x + y < 0
        assert!(!atom(&[2, -1], 0, CompOp::Lt).is_order_atom()); // 2x < y
        assert!(!atom(&[1, -1], 1, CompOp::Lt).is_order_atom()); // x < y - 1
    }

    #[test]
    fn rename_and_widen() {
        let a = atom(&[1, -1], 0, CompOp::Lt); // x0 < x1
        let w = a.widen(4);
        assert_eq!(w.arity(), 4);
        assert!(w.eval(&[rat(0, 1), rat(1, 1), rat(9, 1), rat(9, 1)]));
        let r = a.rename(2, |i| 1 - i); // x1 < x0
        assert!(r.eval(&[rat(1, 1), rat(0, 1)]));
        assert!(!r.eval(&[rat(0, 1), rat(1, 1)]));
    }
}
