//! Fault-tolerant FO+ evaluation: `try_*` entry points that run the
//! Fourier–Motzkin evaluator under a `dco_core::guard::EvalGuard`.
//!
//! Same contract as `dco_fo::guarded`: a fault-free guarded run returns a
//! result structurally identical to the unguarded [`crate::eval_linear`];
//! any resource trip, overflow, cancellation, or contained panic comes
//! back as a typed [`GuardError`] with partial-progress statistics. The
//! linear layer is where arithmetic overflow is a *live* failure mode —
//! Fourier–Motzkin combination multiplies coefficients, so adversarial
//! inputs can push exact rationals past `i128` even when the input
//! representation is small.

use crate::eval::{eval_linear, LinEvalError, LinQueryResult};
use dco_core::guard::{run_guarded, EvalError as GuardError, GuardLimits, Guarded};
use dco_logic::{parse_formula, Formula, ParseError};
use std::fmt;

/// Why a fault-tolerant FO+ evaluation did not produce a result.
#[derive(Debug)]
pub enum TryLinEvalError {
    /// The query text did not parse (string entry point only).
    Parse(ParseError),
    /// A semantic error independent of resources.
    Invalid(LinEvalError),
    /// The guard tripped or a panic was contained.
    Fault(GuardError),
}

impl fmt::Display for TryLinEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryLinEvalError::Parse(e) => write!(f, "parse error: {e}"),
            TryLinEvalError::Invalid(e) => write!(f, "invalid query: {e}"),
            TryLinEvalError::Fault(e) => write!(f, "evaluation fault: {e}"),
        }
    }
}

impl std::error::Error for TryLinEvalError {}

/// Shorthand for the result of the `try_*` entry points.
pub type TryLinResult = Result<Guarded<LinQueryResult>, TryLinEvalError>;

/// Evaluate under the analyzer-suggested default budgets, with the
/// statistics-driven planner choosing the conjunct and elimination order
/// (an equivalence-preserving rewrite) and sizing the guard budgets from
/// its cardinality estimate.
pub fn try_eval_linear(db: &dco_core::prelude::Database, formula: &Formula) -> TryLinResult {
    let stats = dco_analysis::stats::DbStats::of_database(db);
    let limits = dco_analysis::cost::suggested_limits_with_stats(formula, &stats, db.constants());
    let planned = dco_analysis::plan_formula(formula, &stats);
    try_eval_linear_with(db, &planned, limits)
}

/// Evaluate under explicit guard limits.
pub fn try_eval_linear_with(
    db: &dco_core::prelude::Database,
    formula: &Formula,
    limits: GuardLimits,
) -> TryLinResult {
    match run_guarded(limits, || eval_linear(db, formula)) {
        Ok(guarded) => match guarded.value {
            Ok(value) => Ok(Guarded {
                value,
                stats: guarded.stats,
            }),
            Err(e) => Err(TryLinEvalError::Invalid(e)),
        },
        Err(fault) => Err(TryLinEvalError::Fault(fault)),
    }
}

/// Parse, then evaluate under the analyzer-suggested default budgets.
pub fn try_eval_linear_str(db: &dco_core::prelude::Database, src: &str) -> TryLinResult {
    let formula = parse_formula(src).map_err(TryLinEvalError::Parse)?;
    try_eval_linear(db, &formula)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::guard::EvalErrorKind;
    use dco_core::prelude::*;

    fn empty_db() -> Database {
        Database::new(Schema::new())
    }

    #[test]
    fn fault_free_guarded_run_matches_unguarded() {
        let src = "forall x y . exists m . m + m = x + y";
        let unguarded = crate::eval_linear_str(&empty_db(), src).unwrap();
        let guarded = try_eval_linear_str(&empty_db(), src).unwrap();
        assert_eq!(guarded.value.as_bool(), unguarded.as_bool());
        assert!(guarded.stats.probes > 0, "FM steps must hit probes");
    }

    #[test]
    fn overflow_is_a_typed_fault_not_a_panic() {
        // Repeated doubling through Fourier–Motzkin substitution: each
        // equality x_{i+1} = big * x_i multiplies the running coefficient,
        // overflowing i128 well before 30 steps.
        let big = i64::MAX / 3;
        let mut src = format!("x1 = {big} & x2 = {big} * x1");
        for i in 3..=8 {
            src.push_str(&format!(" & x{i} = {big} * x{}", i - 1));
        }
        let formula = dco_logic::parse_formula(&src).expect("parses");
        match try_eval_linear_with(&empty_db(), &formula, GuardLimits::none()) {
            Err(TryLinEvalError::Fault(f)) => {
                assert!(matches!(f.kind, EvalErrorKind::Overflow(_)), "{:?}", f.kind);
            }
            Ok(_) => {
                // Constant folding may keep values representable; the point
                // of the test is "no process abort", which reaching here
                // also demonstrates — but prefer the overflow branch.
                panic!("expected the doubling chain to overflow i128");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn semantic_errors_stay_typed() {
        let err = try_eval_linear_str(&empty_db(), "Zap(x)").unwrap_err();
        assert!(matches!(
            err,
            TryLinEvalError::Invalid(LinEvalError::UnknownPredicate(_))
        ));
    }
}
