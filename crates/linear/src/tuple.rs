//! Conjunctions of linear atoms and Fourier–Motzkin elimination.
//!
//! FO+ can be evaluated bottom-up by \[Tar51\] (as the paper notes in §4);
//! restricted to the *linear* fragment, Tarski's method specializes to the
//! Fourier–Motzkin procedure implemented here: to eliminate `∃x` from a
//! conjunction of linear constraints, substitute any equality that pins `x`,
//! then combine every lower bound on `x` with every upper bound. Redundancy
//! pruning keeps the quadratic growth of each step in check.

use crate::atom::{LinAtom, NormalizedAtom};
use dco_core::intern::{fold, fold_rational, Fingerprinted};
use dco_core::prelude::{CompOp, MemoCache, Rational, VarBox};

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// Process-wide memo cache for [`LinTuple::is_satisfiable`] — the
/// Fourier–Motzkin decision is far more expensive than the dense-order
/// order-graph check, so memoization pays off even sooner here.
pub fn lin_sat_cache() -> &'static MemoCache<LinTuple, bool> {
    static CACHE: OnceLock<MemoCache<LinTuple, bool>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Order-independent fingerprint of a linear atom: a SplitMix64 chain over
/// the comparison op, the (fixed-length) coefficient vector, and the
/// constant. Mirrors [`dco_core::intern::atom_fingerprint`] for the linear
/// fragment.
pub fn lin_atom_fingerprint(a: &LinAtom) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    h = fold(
        h,
        match a.op() {
            CompOp::Lt => 1,
            CompOp::Le => 2,
            CompOp::Eq => 3,
        },
    );
    for c in a.coeffs() {
        h = fold_rational(h, c);
    }
    fold_rational(h, a.constant())
}

/// A satisfiability-undecided conjunction of linear atoms over
/// columns `0..arity`. The empty conjunction is all of `Q^arity`.
///
/// Carries a precomputed, order-independent fingerprint (wrapping sum of
/// per-atom hashes) so hashing is O(1) and equality fast-paths on one `u64`
/// compare, plus per-column interval bounding boxes derived from
/// single-variable atoms so join loops can skip box-disjoint pairs before
/// running Fourier–Motzkin. Both are maintained incrementally by [`push`]
/// (`LinTuple::push`).
#[derive(Clone, Debug)]
pub struct LinTuple {
    arity: u32,
    atoms: Vec<LinAtom>,
    fp: u64,
    boxes: Vec<VarBox>,
}

impl PartialEq for LinTuple {
    fn eq(&self, other: &LinTuple) -> bool {
        // Fingerprint mismatch settles inequality in one compare; on a
        // match the full structural check guards against collisions.
        self.arity == other.arity && self.fp == other.fp && self.atoms == other.atoms
    }
}

impl Eq for LinTuple {}

impl PartialOrd for LinTuple {
    fn partial_cmp(&self, other: &LinTuple) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LinTuple {
    fn cmp(&self, other: &LinTuple) -> std::cmp::Ordering {
        (self.arity, &self.atoms).cmp(&(other.arity, &other.atoms))
    }
}

impl Hash for LinTuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint());
    }
}

impl Fingerprinted for LinTuple {
    fn fingerprint(&self) -> u64 {
        LinTuple::fingerprint(self)
    }
}

impl LinTuple {
    /// The unconstrained tuple.
    pub fn top(arity: u32) -> LinTuple {
        LinTuple {
            arity,
            atoms: Vec::new(),
            fp: 0,
            boxes: Vec::new(),
        }
    }

    /// Build from atoms (deduplicating); `None` if some atom arity differs.
    pub fn from_atoms(arity: u32, atoms: impl IntoIterator<Item = LinAtom>) -> LinTuple {
        let mut t = LinTuple::top(arity);
        for a in atoms {
            t.push(a);
        }
        t
    }

    /// Number of columns.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// The conjuncts.
    pub fn atoms(&self) -> &[LinAtom] {
        &self.atoms
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Is the conjunction empty (top)?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Insert keeping sorted/dedup invariant; maintains the fingerprint and
    /// the per-column bounding boxes incrementally.
    pub fn push(&mut self, atom: LinAtom) {
        assert_eq!(atom.arity(), self.arity, "atom arity mismatch");
        match self.atoms.binary_search(&atom) {
            Ok(_) => {}
            Err(pos) => {
                self.fp = self.fp.wrapping_add(lin_atom_fingerprint(&atom));
                self.update_box(&atom);
                self.atoms.insert(pos, atom);
            }
        }
    }

    /// If `atom` constrains exactly one column, fold it into that column's
    /// bounding box: `c·x + k op 0` is `x op' -k/c` with the comparison
    /// flipped when `c < 0`.
    fn update_box(&mut self, atom: &LinAtom) {
        let mut solo: Option<usize> = None;
        for (j, c) in atom.coeffs().iter().enumerate() {
            if !c.is_zero() {
                if solo.is_some() {
                    return; // two columns involved: not a box constraint
                }
                solo = Some(j);
            }
        }
        let Some(j) = solo else { return };
        let c = atom.coeffs()[j];
        let bound = -(atom.constant() / &c);
        if self.boxes.is_empty() {
            self.boxes = vec![VarBox::default(); self.arity as usize];
        }
        match atom.op() {
            CompOp::Eq => {
                self.boxes[j].tighten_lo(bound, false);
                self.boxes[j].tighten_hi(bound, false);
            }
            op => {
                let strict = op == CompOp::Lt;
                if c.is_positive() {
                    self.boxes[j].tighten_hi(bound, strict);
                } else {
                    self.boxes[j].tighten_lo(bound, strict);
                }
            }
        }
    }

    /// Order-independent structural fingerprint (see [`lin_atom_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        fold(self.fp, self.arity as u64)
    }

    /// Per-column interval over-approximation derived from single-variable
    /// atoms; empty slice when no column has a direct bound.
    pub fn bounding_box(&self) -> &[VarBox] {
        &self.boxes
    }

    /// Whether some column's bounding boxes are disjoint — a sound proof
    /// that `self.conjoin(other)` is unsatisfiable, decided without running
    /// Fourier–Motzkin.
    pub fn box_disjoint(&self, other: &LinTuple) -> bool {
        self.boxes
            .iter()
            .zip(other.boxes.iter())
            .any(|(a, b)| a.disjoint(b))
    }

    /// Conjoin.
    pub fn conjoin(&self, other: &LinTuple) -> LinTuple {
        assert_eq!(self.arity, other.arity);
        let mut t = self.clone();
        for a in &other.atoms {
            t.push(a.clone());
        }
        t
    }

    /// Point membership.
    pub fn contains_point(&self, point: &[Rational]) -> bool {
        self.atoms.iter().all(|a| a.eval(point))
    }

    /// Eliminate `∃ x_j` by Fourier–Motzkin. Returns `None` if the
    /// conjunction is discovered unsatisfiable (a trivially-false atom
    /// appears during combination).
    pub fn eliminate(&self, j: usize) -> Option<LinTuple> {
        // Guard probe: one hit per Fourier–Motzkin pivot (variable
        // eliminated from one conjunction).
        dco_core::guard::probe(dco_core::guard::ProbeSite::FourierMotzkin);
        // 1. Equality substitution: if an equality mentions x_j, solve for it
        //    and substitute into every other atom.
        if let Some(eq) = self
            .atoms
            .iter()
            .find(|a| a.op() == CompOp::Eq && a.mentions(j))
        {
            let aj = *eq.coeff(j);
            let mut out = LinTuple::top(self.arity);
            for a in &self.atoms {
                if a == eq {
                    continue;
                }
                if !a.mentions(j) {
                    out.push(a.clone());
                    continue;
                }
                // a' = a - (a_j / e_j) * eq  — kills column j, preserves op.
                let factor = -(a.coeff(j) / &aj);
                match a.combine(eq, &factor, a.op()) {
                    NormalizedAtom::True => {}
                    NormalizedAtom::False => return None,
                    NormalizedAtom::Atom(n) => out.push(n),
                }
            }
            return Some(out);
        }
        // 2. Partition by the sign of the coefficient of x_j.
        let mut rest = LinTuple::top(self.arity);
        let mut lowers: Vec<&LinAtom> = Vec::new(); // coeff < 0: x_j >(=) bound
        let mut uppers: Vec<&LinAtom> = Vec::new(); // coeff > 0: x_j <(=) bound
        for a in &self.atoms {
            if !a.mentions(j) {
                rest.push(a.clone());
            } else if a.coeff(j).is_positive() {
                uppers.push(a);
            } else {
                lowers.push(a);
            }
        }
        // 3. Combine: for lower L (coeff l_j < 0) and upper U (coeff u_j > 0),
        //    the shadow constraint is  U/u_j + L/(-l_j)  ρ  0, i.e.
        //    combine(U, L, u_j / -l_j) rescaled — any positive multiple works:
        //    take U + (u_j / -l_j)·L, whose x_j coefficient vanishes.
        for l in &lowers {
            for u in &uppers {
                let factor = &(u.coeff(j) / &(-*l.coeff(j)));
                let op = if l.op().is_strict() || u.op().is_strict() {
                    CompOp::Lt
                } else {
                    CompOp::Le
                };
                match u.combine(l, factor, op) {
                    NormalizedAtom::True => {}
                    NormalizedAtom::False => return None,
                    NormalizedAtom::Atom(n) => rest.push(n),
                }
            }
        }
        Some(rest.pruned())
    }

    /// Decide satisfiability over Q, memoized in [`lin_sat_cache`]: atoms
    /// are kept sorted and deduplicated, so identical conjunctions arising
    /// in different operations run Fourier–Motzkin exactly once.
    pub fn is_satisfiable(&self) -> bool {
        if self.atoms.is_empty() {
            return true;
        }
        // An empty bounding box on any column refutes the conjunction
        // without touching the cache or Fourier–Motzkin.
        if self.boxes.iter().any(|b| b.disjoint(b)) {
            return false;
        }
        lin_sat_cache().get_or_insert_with(self, || self.is_satisfiable_uncached())
    }

    /// Decide satisfiability by eliminating every variable, without
    /// consulting the memo cache.
    pub fn is_satisfiable_uncached(&self) -> bool {
        let mut cur = self.clone();
        for j in 0..self.arity as usize {
            match cur.eliminate(j) {
                None => return false,
                Some(next) => cur = next,
            }
        }
        // All remaining atoms are variable-free and were decided during
        // normalization, so reaching here means satisfiable.
        debug_assert!(cur
            .atoms
            .iter()
            .all(|a| a.coeffs().iter().all(|c| c.is_zero())));
        true
    }

    /// Remove syntactically redundant atoms: among atoms with identical
    /// coefficient vectors, keep only the tightest bound.
    pub fn pruned(&self) -> LinTuple {
        let mut kept: Vec<LinAtom> = Vec::new();
        'outer: for a in &self.atoms {
            let mut i = 0;
            while i < kept.len() {
                match dominance(&kept[i], a) {
                    Some(true) => continue 'outer, // kept[i] implies a
                    Some(false) => {
                        kept.remove(i);
                    }
                    None => i += 1,
                }
            }
            kept.push(a.clone());
        }
        LinTuple::from_atoms(self.arity, kept)
    }

    /// Syntactic subsumption: if every atom of `self` appears literally in
    /// `other`, then `other` carries strictly more constraints, so
    /// `other ⊆ self` as point sets. A single linear merge over the sorted
    /// atom vectors; sound but incomplete.
    pub fn subsumes_syntactic(&self, other: &LinTuple) -> bool {
        debug_assert_eq!(self.arity, other.arity);
        if self.atoms.len() > other.atoms.len() {
            return false;
        }
        if self.atoms.len() == other.atoms.len() {
            // Equal length makes subsumption equality; fingerprints decide
            // it in one compare (full check on the rare collision).
            return self.fp == other.fp && self.atoms == other.atoms;
        }
        let mut it = other.atoms.iter();
        'outer: for a in &self.atoms {
            for b in it.by_ref() {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Widen to a larger arity. Rebuilds through [`LinTuple::from_atoms`]
    /// because the fingerprint folds the full coefficient vector, whose
    /// length changes with the arity.
    pub fn widen(&self, new_arity: u32) -> LinTuple {
        LinTuple::from_atoms(new_arity, self.atoms.iter().map(|a| a.widen(new_arity)))
    }

    /// Rename columns into a target arity.
    pub fn rename(&self, new_arity: u32, f: impl Fn(u32) -> u32 + Copy) -> LinTuple {
        LinTuple::from_atoms(new_arity, self.atoms.iter().map(|a| a.rename(new_arity, f)))
    }
}

/// If `a` implies `b` returns `Some(true)`; if `b` implies `a` returns
/// `Some(false)`; otherwise `None`. Only detects same-coefficient dominance.
fn dominance(a: &LinAtom, b: &LinAtom) -> Option<bool> {
    if a.coeffs() != b.coeffs() {
        return None;
    }
    // e + c1 (op1) 0 vs e + c2 (op2) 0: larger constant is tighter.
    use std::cmp::Ordering::*;
    match (a.op(), b.op()) {
        (CompOp::Eq, _) | (_, CompOp::Eq) => {
            // e + c1 = 0 implies e + c2 <= 0 iff c2 <= c1... but also depends
            // on op; keep it simple and only dedup exact equality.
            if a == b {
                Some(true)
            } else {
                None
            }
        }
        (aop, bop) => match a.constant().cmp(b.constant()) {
            Greater => Some(true), // a tighter
            Less => Some(false),   // b tighter
            Equal => match (aop, bop) {
                (CompOp::Lt, _) => Some(true), // strict implies weak
                (_, CompOp::Lt) => Some(false),
                _ => Some(true), // identical
            },
        },
    }
}

impl fmt::Display for LinTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "⊤/{}", self.arity);
        }
        let parts: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join(" & "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::prelude::rat;

    fn atom(coeffs: &[i64], k: i64, op: CompOp) -> LinAtom {
        LinAtom::new(
            coeffs.iter().map(|&c| rat(c as i128, 1)).collect(),
            rat(k as i128, 1),
            op,
        )
    }

    fn pt(v: &[i64]) -> Vec<Rational> {
        v.iter().map(|&x| rat(x as i128, 1)).collect()
    }

    #[test]
    fn simplex_satisfiable() {
        // x >= 0, y >= 0, x + y <= 1
        let t = LinTuple::from_atoms(
            2,
            vec![
                atom(&[-1, 0], 0, CompOp::Le),
                atom(&[0, -1], 0, CompOp::Le),
                atom(&[1, 1], -1, CompOp::Le),
            ],
        );
        assert!(t.is_satisfiable());
        assert!(t.contains_point(&pt(&[0, 0])));
        assert!(!t.contains_point(&pt(&[1, 1])));
    }

    #[test]
    fn infeasible_system() {
        // x + y < 0 and x > 0 and y > 0
        let t = LinTuple::from_atoms(
            2,
            vec![
                atom(&[1, 1], 0, CompOp::Lt),
                atom(&[-1, 0], 0, CompOp::Lt),
                atom(&[0, -1], 0, CompOp::Lt),
            ],
        );
        assert!(!t.is_satisfiable());
    }

    #[test]
    fn strictness_matters() {
        // x <= 0 and x >= 0: sat (x = 0); x < 0 and x >= 0: unsat
        let sat = LinTuple::from_atoms(
            1,
            vec![atom(&[1], 0, CompOp::Le), atom(&[-1], 0, CompOp::Le)],
        );
        assert!(sat.is_satisfiable());
        let unsat = LinTuple::from_atoms(
            1,
            vec![atom(&[1], 0, CompOp::Lt), atom(&[-1], 0, CompOp::Le)],
        );
        assert!(!unsat.is_satisfiable());
    }

    #[test]
    fn elimination_projects_shadow() {
        // triangle x >= 0, y >= 0, x + 2y <= 4; eliminate y → 0 <= x <= 4
        let t = LinTuple::from_atoms(
            2,
            vec![
                atom(&[-1, 0], 0, CompOp::Le),
                atom(&[0, -1], 0, CompOp::Le),
                atom(&[1, 2], -4, CompOp::Le),
            ],
        );
        let e = t.eliminate(1).unwrap();
        assert!(e.contains_point(&pt(&[0, 99])));
        assert!(e.contains_point(&pt(&[4, 99])));
        assert!(!e.contains_point(&pt(&[5, 0])));
        assert!(!e.contains_point(&pt(&[-1, 0])));
    }

    #[test]
    fn equality_substitution() {
        // x = 2y ∧ x + y <= 3 ⇒ after ∃x: 3y <= 3 i.e. y <= 1
        let t = LinTuple::from_atoms(
            2,
            vec![atom(&[1, -2], 0, CompOp::Eq), atom(&[1, 1], -3, CompOp::Le)],
        );
        let e = t.eliminate(0).unwrap();
        assert!(e.contains_point(&pt(&[99, 1])));
        assert!(!e.contains_point(&pt(&[99, 2])));
    }

    #[test]
    fn contradictory_equalities_unsat() {
        // x = 1 ∧ x = 2
        let t = LinTuple::from_atoms(
            1,
            vec![atom(&[1], -1, CompOp::Eq), atom(&[1], -2, CompOp::Eq)],
        );
        assert!(!t.is_satisfiable());
    }

    #[test]
    fn pruning_keeps_tightest() {
        // x <= 5 and x <= 3 → keep x <= 3
        let t = LinTuple::from_atoms(
            1,
            vec![atom(&[1], -5, CompOp::Le), atom(&[1], -3, CompOp::Le)],
        )
        .pruned();
        assert_eq!(t.len(), 1);
        assert!(t.contains_point(&pt(&[3])));
        assert!(!t.contains_point(&pt(&[4])));
        // strict vs weak at same constant: strict wins
        let t = LinTuple::from_atoms(
            1,
            vec![atom(&[1], -3, CompOp::Le), atom(&[1], -3, CompOp::Lt)],
        )
        .pruned();
        assert_eq!(t.len(), 1);
        assert!(!t.contains_point(&pt(&[3])));
    }

    #[test]
    fn unbounded_elimination_drops_all() {
        // only a lower bound on y: ∃y. y >= x  ≡ true
        let t = LinTuple::from_atoms(2, vec![atom(&[1, -1], 0, CompOp::Le)]);
        let e = t.eliminate(1).unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn boxes_from_single_variable_atoms_detect_disjointness() {
        // x <= 1 (coeff +1) vs x >= 2 (coeff -1): boxes [..,1] and [2,..].
        let low = LinTuple::from_atoms(2, vec![atom(&[1, 0], -1, CompOp::Le)]);
        let high = LinTuple::from_atoms(2, vec![atom(&[-1, 0], 2, CompOp::Le)]);
        assert!(low.box_disjoint(&high));
        assert!(!low.conjoin(&high).is_satisfiable());
        // Two-column atoms contribute nothing to boxes: x + y <= 0 vs x + y >= 1
        // overlap as boxes (both unconstrained) even though unsat together.
        let a = LinTuple::from_atoms(2, vec![atom(&[1, 1], 0, CompOp::Le)]);
        let b = LinTuple::from_atoms(2, vec![atom(&[-1, -1], 1, CompOp::Le)]);
        assert!(!a.box_disjoint(&b));
        assert!(!a.conjoin(&b).is_satisfiable());
    }

    #[test]
    fn negative_coefficient_flips_box_side() {
        // -2x + 6 <= 0 is x >= 3: a lower bound despite the Le op.
        let t = LinTuple::from_atoms(1, vec![atom(&[-2], 6, CompOp::Le)]);
        let hi = LinTuple::from_atoms(1, vec![atom(&[1], -2, CompOp::Lt)]); // x < 2
        assert!(t.box_disjoint(&hi));
        assert!(t.contains_point(&pt(&[3])));
    }

    #[test]
    fn fingerprint_is_construction_order_independent() {
        let a = atom(&[1, 0], -1, CompOp::Le);
        let b = atom(&[0, 1], -2, CompOp::Lt);
        let ab = LinTuple::from_atoms(2, vec![a.clone(), b.clone()]);
        let ba = LinTuple::from_atoms(2, vec![b, a]);
        assert_eq!(ab, ba);
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        // widen rebuilds the fingerprint over the padded coefficient vectors
        let w = ab.widen(3);
        assert_eq!(w, ab.widen(3));
        assert_ne!(w.fingerprint(), ab.fingerprint());
    }

    #[test]
    fn dense_rationals_admit_open_boxes() {
        // 0 < x < 1 is satisfiable over Q
        let t = LinTuple::from_atoms(
            1,
            vec![atom(&[-1], 0, CompOp::Lt), atom(&[1], -1, CompOp::Lt)],
        );
        assert!(t.is_satisfiable());
    }
}
