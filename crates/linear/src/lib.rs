//! # dco-linear — FO+ over dense-order constraint databases
//!
//! The linear-constraint layer of *Dense-Order Constraint Databases*
//! (Grumbach & Su, PODS 1995): FO with a built-in addition (`FO+`),
//! evaluated bottom-up in closed form via Fourier–Motzkin elimination.
//! §4 of the paper: FO+ has NC data complexity in general and uniform AC⁰
//! over integer-defined inputs (Theorem 4.1), yet cannot express graph or
//! region connectivity (Theorems 4.2–4.3).
//!
//! ```
//! use dco_core::prelude::*;
//! use dco_linear::eval_linear_str;
//!
//! let db = Database::new(Schema::new());
//! // Density of Q in FO+ clothing: every pair has a midpoint.
//! let q = eval_linear_str(&db, "forall x y . exists m . m + m = x + y").unwrap();
//! assert_eq!(q.as_bool(), Some(true));
//! ```

#![warn(missing_docs)]

pub mod atom;
pub mod eval;
pub mod guarded;
pub mod relation;
pub mod tuple;

pub use atom::{LinAtom, NormalizedAtom};
pub use eval::{eval_linear, eval_linear_str, LinEvalError, LinQueryResult};
pub use guarded::{try_eval_linear, try_eval_linear_str, try_eval_linear_with, TryLinEvalError};
pub use relation::LinRelation;
pub use tuple::LinTuple;
