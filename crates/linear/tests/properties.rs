//! Property-based tests of the FO+ layer: Fourier–Motzkin soundness and
//! completeness, algebra laws on linear relations, and agreement with the
//! dense-order engine on the order fragment.

use dco_core::prelude::{
    rat, CompOp, GeneralizedRelation, GeneralizedTuple, Rational, RawAtom, RawOp, Term,
};
use dco_linear::{LinAtom, LinRelation, LinTuple, NormalizedAtom};
use proptest::prelude::*;

/// A random linear atom over `arity` columns with small coefficients.
fn arb_lin_atom(arity: usize) -> impl Strategy<Value = Option<LinAtom>> {
    (
        prop::collection::vec(-3i64..=3, arity),
        -6i64..=6,
        prop_oneof![Just(CompOp::Lt), Just(CompOp::Le), Just(CompOp::Eq)],
    )
        .prop_map(|(coeffs, k, op)| {
            let coeffs: Vec<Rational> = coeffs.into_iter().map(|c| rat(c as i128, 1)).collect();
            match LinAtom::normalize(coeffs, rat(k as i128, 1), op) {
                NormalizedAtom::Atom(a) => Some(a),
                _ => None,
            }
        })
}

fn arb_lin_tuple(arity: usize) -> impl Strategy<Value = LinTuple> {
    prop::collection::vec(arb_lin_atom(arity), 0..4)
        .prop_map(move |atoms| LinTuple::from_atoms(arity as u32, atoms.into_iter().flatten()))
}

fn arb_lin_relation(arity: usize) -> impl Strategy<Value = LinRelation> {
    prop::collection::vec(arb_lin_tuple(arity), 0..3)
        .prop_map(move |ts| LinRelation::from_tuples(arity as u32, ts))
}

fn arb_point(arity: usize) -> impl Strategy<Value = Vec<Rational>> {
    prop::collection::vec(
        prop_oneof![
            (-8i64..8).prop_map(|c| rat(c as i128, 1)),
            (-16i64..16, 2i64..5).prop_map(|(n, d)| rat(n as i128, d as i128)),
        ],
        arity..=arity,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- Fourier–Motzkin ---------------------------------------------

    #[test]
    fn fm_elimination_is_sound(t in arb_lin_tuple(2), p in arb_point(2)) {
        // if (p0, p1) satisfies t, then p satisfies ∃x1.t
        if let Some(e) = t.eliminate(1) {
            if t.contains_point(&p) {
                prop_assert!(e.contains_point(&p), "FM lost a point");
            }
        } else {
            // elimination says unsatisfiable — then no point satisfies t
            prop_assert!(!t.contains_point(&p));
        }
    }

    #[test]
    fn fm_satisfiability_agrees_with_elimination(t in arb_lin_tuple(3)) {
        // eliminating all variables must agree with is_satisfiable
        let mut cur = Some(t.clone());
        for j in 0..3 {
            cur = cur.and_then(|c| c.eliminate(j));
        }
        prop_assert_eq!(cur.is_some(), t.is_satisfiable());
    }

    #[test]
    fn pruning_preserves_semantics(t in arb_lin_tuple(2), p in arb_point(2)) {
        prop_assert_eq!(t.pruned().contains_point(&p), t.contains_point(&p));
    }

    // ---- algebra laws --------------------------------------------------

    #[test]
    fn lin_union_pointwise(a in arb_lin_relation(2), b in arb_lin_relation(2), p in arb_point(2)) {
        prop_assert_eq!(
            a.union(&b).contains_point(&p),
            a.contains_point(&p) || b.contains_point(&p)
        );
    }

    #[test]
    fn lin_intersect_pointwise(a in arb_lin_relation(2), b in arb_lin_relation(2), p in arb_point(2)) {
        prop_assert_eq!(
            a.intersect(&b).contains_point(&p),
            a.contains_point(&p) && b.contains_point(&p)
        );
    }

    #[test]
    fn lin_complement_pointwise(a in arb_lin_relation(1), p in arb_point(1)) {
        prop_assert_eq!(a.complement().contains_point(&p), !a.contains_point(&p));
    }

    #[test]
    fn lin_projection_contains_shadow(a in arb_lin_relation(2), p in arb_point(2)) {
        if a.contains_point(&p) {
            prop_assert!(a.project_out(1).contains_point(&p));
        }
    }

    // ---- order-fragment conversions ------------------------------------

    #[test]
    fn from_dense_preserves_membership(p in arb_point(2)) {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        let lin = LinRelation::from_dense(&tri);
        prop_assert_eq!(lin.contains_point(&p), tri.contains_point(&p));
    }

    #[test]
    fn dense_roundtrip_on_random_order_relations(raws in prop::collection::vec(
        (
            prop_oneof![(0u32..2).prop_map(Term::var), (-5i64..5).prop_map(|c| Term::cst(rat(c as i128, 1)))],
            prop_oneof![Just(RawOp::Lt), Just(RawOp::Le), Just(RawOp::Eq)],
            prop_oneof![(0u32..2).prop_map(Term::var), (-5i64..5).prop_map(|c| Term::cst(rat(c as i128, 1)))],
        ).prop_map(|(l, op, r)| RawAtom::new(l, op, r)),
        0..3,
    ), p in arb_point(2)) {
        let mut rel = GeneralizedRelation::empty(2);
        for t in GeneralizedTuple::from_raw(2, raws) {
            rel.insert(t);
        }
        let lin = LinRelation::from_dense(&rel);
        prop_assert_eq!(lin.contains_point(&p), rel.contains_point(&p));
        if let Some(back) = lin.to_dense() {
            prop_assert_eq!(back.contains_point(&p), rel.contains_point(&p));
        }
    }
}
