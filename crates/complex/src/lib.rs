//! # dco-complex — complex constraint objects and C-CALC (§5)
//!
//! Section 5 of *Dense-Order Constraint Databases* (Grumbach & Su, PODS
//! 1995) lifts constraint databases to **complex objects**: values built
//! from finitely representable pointsets by tuple and set constructs, with
//! the calculus **C-CALC** quantifying over sets under an *active-domain
//! semantics* (set variables range over finitely many c-objects determined
//! by the input — unions of cells, in the spirit of \[Col75, KY85\]).
//!
//! The headline results this crate makes executable:
//!
//! * **Theorem 5.2** `PTIME ⊆ C-CALC₁ ⊆ PSPACE` — transitive reachability
//!   (PTIME) written with one set variable evaluates correctly, at
//!   `2^#cells` enumeration cost (experiment E5);
//! * **Theorems 5.3–5.5** — the set-height hierarchy: each extra level of
//!   set nesting exponentiates the active domain (experiment E6 measures
//!   `#cells`, `2^#cells`, `2^(2^#cells)` directly).

#![warn(missing_docs)]

pub mod ccalc;
pub mod fixpoint;
pub mod range;
pub mod types;

pub use ccalc::{CCalc, CCalcConfig, CCalcError, CCalcStats, CFormula, RatTerm, SetRef};
pub use types::{CType, CValue, CanonicalSet};
