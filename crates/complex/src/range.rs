//! Range restriction (§5's closing discussion).
//!
//! "This approach, called 'range restriction', uses syntactic conditions on
//! formulas to ensure that set values assigned to set variables are only
//! from the input database. The range restriction rules are defined similar
//! to that for classical complex objects in \[GV91\]. For example, one rule
//! states that if R(x₁, …, x_n) is an atomic formula, then x₁, …, x_n are
//! range restricted."
//!
//! We implement a conservative checker in that spirit: a variable is
//! *restricted* in a formula if every model-relevant occurrence route binds
//! it to the input — positively through a predicate atom, an equality with
//! a constant or an already-restricted variable, or membership in a
//! restricted set variable. Quantified set variables are restricted when
//! they occur (somewhere positive) as `… ∈ S` comparisons against input-
//! derived tuples or in a `S = {comprehension over restricted vars}`.
//! The checker is sound (never accepts an unrestricted formula), not
//! complete — exactly the nature of syntactic range restriction.

use crate::ccalc::{CFormula, RatTerm};
use std::collections::BTreeSet;

/// Conservative test: are all free rational variables of `vars` restricted
/// by positive occurrences inside `f`?
pub fn rat_vars_restricted(f: &CFormula, vars: &[String]) -> bool {
    let restricted = positive_restricted(f);
    vars.iter().all(|v| restricted.contains(v))
}

/// Is the formula range-restricted as a whole: every quantified rational
/// variable is restricted inside its scope (set quantifiers are always
/// "restricted" under active-domain semantics — their range is finite by
/// construction, which is the §5 alternative to syntactic restriction).
pub fn is_range_restricted(f: &CFormula) -> bool {
    match f {
        CFormula::True
        | CFormula::False
        | CFormula::Compare(..)
        | CFormula::Pred(..)
        | CFormula::MemTuple(..)
        | CFormula::MemSet(..)
        | CFormula::SetEq(..) => true,
        CFormula::Not(g) => is_range_restricted(g),
        CFormula::And(gs) | CFormula::Or(gs) => gs.iter().all(is_range_restricted),
        CFormula::ExistsRat(x, g) => positive_restricted(g).contains(x) && is_range_restricted(g),
        CFormula::ForallRat(x, g) => {
            // ∀x φ ≡ ¬∃x ¬φ: restriction is checked on the negation's
            // positive occurrences; conservatively require x restricted in
            // the *negated* body's positive part.
            positive_restricted(&CFormula::Not(Box::new((**g).clone()))).contains(x)
                && is_range_restricted(g)
        }
        CFormula::ExistsSet(_, _, g)
        | CFormula::ForallSet(_, _, g)
        | CFormula::ExistsSetSet(_, _, g)
        | CFormula::ForallSetSet(_, _, g) => is_range_restricted(g),
    }
}

/// The set of rational variables restricted by positive occurrences.
fn positive_restricted(f: &CFormula) -> BTreeSet<String> {
    // fixpoint over equality propagation
    let mut restricted = BTreeSet::new();
    loop {
        let before = restricted.len();
        collect(f, true, &mut restricted);
        if restricted.len() == before {
            return restricted;
        }
    }
}

fn collect(f: &CFormula, positive: bool, out: &mut BTreeSet<String>) {
    match f {
        CFormula::True | CFormula::False => {}
        CFormula::Compare(l, op, r) => {
            if !positive {
                return;
            }
            // x = constant restricts x; x = y propagates.
            if *op == dco_core::prelude::RawOp::Eq {
                match (l, r) {
                    (RatTerm::Var(v), RatTerm::Const(_)) | (RatTerm::Const(_), RatTerm::Var(v)) => {
                        out.insert(v.clone());
                    }
                    (RatTerm::Var(a), RatTerm::Var(b)) => {
                        if out.contains(a) {
                            out.insert(b.clone());
                        }
                        if out.contains(b) {
                            out.insert(a.clone());
                        }
                    }
                    _ => {}
                }
            }
        }
        CFormula::Pred(_, args) | CFormula::MemTuple(args, _) => {
            if positive {
                for a in args {
                    if let RatTerm::Var(v) = a {
                        out.insert(v.clone());
                    }
                }
            }
        }
        CFormula::MemSet(..) | CFormula::SetEq(..) => {}
        CFormula::Not(g) => collect(g, !positive, out),
        CFormula::And(gs) => {
            for g in gs {
                collect(g, positive, out);
            }
        }
        CFormula::Or(gs) => {
            // a variable is restricted by a disjunction only if every
            // disjunct restricts it — compute intersection.
            if !positive {
                for g in gs {
                    collect(g, positive, out);
                }
                return;
            }
            let mut per: Vec<BTreeSet<String>> = Vec::new();
            for g in gs {
                let mut s = out.clone();
                collect(g, positive, &mut s);
                per.push(s);
            }
            if let Some(first) = per.first() {
                let inter = per.iter().skip(1).fold(first.clone(), |acc, s| {
                    acc.intersection(s).cloned().collect()
                });
                out.extend(inter);
            }
        }
        CFormula::ExistsRat(x, g) | CFormula::ForallRat(x, g) => {
            // bound variable: occurrences inside don't restrict the outer x
            let mut inner = out.clone();
            inner.remove(x);
            collect(g, positive, &mut inner);
            inner.remove(x);
            out.extend(inner);
        }
        CFormula::ExistsSet(_, _, g)
        | CFormula::ForallSet(_, _, g)
        | CFormula::ExistsSetSet(_, _, g)
        | CFormula::ForallSetSet(_, _, g) => collect(g, positive, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccalc::SetRef;
    use dco_core::prelude::{rat, RawOp};
    use CFormula as F;

    fn pred_x() -> CFormula {
        F::Pred("s".into(), vec![RatTerm::var("x")])
    }

    #[test]
    fn predicate_restricts_its_variables() {
        assert!(rat_vars_restricted(&pred_x(), &["x".to_string()]));
        assert!(!rat_vars_restricted(&pred_x(), &["y".to_string()]));
    }

    #[test]
    fn constant_equality_restricts() {
        let f = F::Compare(RatTerm::var("x"), RawOp::Eq, RatTerm::cst(rat(3, 1)));
        assert!(rat_vars_restricted(&f, &["x".to_string()]));
        // inequality does not
        let g = F::Compare(RatTerm::var("x"), RawOp::Lt, RatTerm::cst(rat(3, 1)));
        assert!(!rat_vars_restricted(&g, &["x".to_string()]));
    }

    #[test]
    fn equality_propagates() {
        let f = F::And(vec![
            pred_x(),
            F::Compare(RatTerm::var("x"), RawOp::Eq, RatTerm::var("y")),
        ]);
        assert!(rat_vars_restricted(&f, &["y".to_string()]));
    }

    #[test]
    fn disjunction_needs_both_branches() {
        let both = F::Or(vec![pred_x(), F::Pred("t".into(), vec![RatTerm::var("x")])]);
        assert!(rat_vars_restricted(&both, &["x".to_string()]));
        let one = F::Or(vec![pred_x(), F::True]);
        assert!(!rat_vars_restricted(&one, &["x".to_string()]));
    }

    #[test]
    fn negation_blocks_restriction() {
        let f = F::Not(Box::new(pred_x()));
        assert!(!rat_vars_restricted(&f, &["x".to_string()]));
    }

    #[test]
    fn quantified_formulas() {
        // ∃x (s(x) ∧ x < y): x restricted, whole formula restricted iff...
        let f = F::ExistsRat(
            "x".into(),
            Box::new(F::And(vec![
                pred_x(),
                F::Compare(RatTerm::var("x"), RawOp::Lt, RatTerm::var("y")),
            ])),
        );
        assert!(is_range_restricted(&f));
        // ∃x (x < 3) is NOT range-restricted (x ranges over an infinite set)
        let g = F::ExistsRat(
            "x".into(),
            Box::new(F::Compare(
                RatTerm::var("x"),
                RawOp::Lt,
                RatTerm::cst(rat(3, 1)),
            )),
        );
        assert!(!is_range_restricted(&g));
    }

    #[test]
    fn membership_restricts() {
        let f = F::ExistsRat(
            "x".into(),
            Box::new(F::MemTuple(
                vec![RatTerm::var("x")],
                SetRef::Var("S".into()),
            )),
        );
        assert!(is_range_restricted(&f));
    }
}
