//! C-CALC: the calculus for constraint complex objects (§5).
//!
//! Syntax: first-order logic extended with typed set variables and set
//! terms `{(x̄) | φ}`. Semantics: the paper's **active-domain semantics** —
//! "the range of each set variable consists of a finite number of
//! c-objects [which] depend on the input database". Concretely, a set
//! variable of type `{Q^k}` ranges over the unions of k-cells of the input
//! database's constant set (quantifying over "cells" in the spirit of
//! \[Col75, KY85\], as the paper notes), and a height-2 variable over finite
//! sets of those.
//!
//! Rational (atomic) quantifiers are evaluated by *cell sampling*: `∃x φ`
//! holds iff `φ` holds at the sample point of some 1-cell over the current
//! constant set (input constants plus previously sampled witnesses) — sound
//! and complete for generic formulas because truth is invariant under
//! automorphisms fixing those constants. For finite (equality-constraint)
//! inputs like the experiment graphs, this semantics is exact.
//!
//! The enumeration of set ranges is `2^#cells` — the hyper-exponential
//! blow-up with set-height that Theorems 5.2–5.5 are about; experiments E5
//! and E6 measure it directly on this evaluator.

use crate::types::CanonicalSet;
use dco_core::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A rational-valued term.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RatTerm {
    /// A rational variable.
    Var(String),
    /// A constant.
    Const(Rational),
}

impl RatTerm {
    /// Variable shorthand.
    pub fn var(name: &str) -> RatTerm {
        RatTerm::Var(name.to_string())
    }

    /// Constant shorthand.
    pub fn cst(c: impl Into<Rational>) -> RatTerm {
        RatTerm::Const(c.into())
    }
}

/// A reference to a set: a variable or a comprehension `{(x̄) | φ}`.
#[derive(Clone, PartialEq, Debug)]
pub enum SetRef {
    /// A set variable (height 1).
    Var(String),
    /// A set comprehension over rational variables.
    Comprehension(Vec<String>, Box<CFormula>),
}

/// A C-CALC formula.
#[derive(Clone, PartialEq, Debug)]
pub enum CFormula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// Dense-order comparison of rational terms.
    Compare(RatTerm, RawOp, RatTerm),
    /// Input predicate over rational terms.
    Pred(String, Vec<RatTerm>),
    /// Tuple membership `(t̄) ∈ S`.
    MemTuple(Vec<RatTerm>, SetRef),
    /// Set membership `S ∈ T` (height-1 variable in height-2 variable).
    MemSet(SetRef, String),
    /// Set equality of two height-1 sets.
    SetEq(SetRef, SetRef),
    /// Negation.
    Not(Box<CFormula>),
    /// Conjunction.
    And(Vec<CFormula>),
    /// Disjunction.
    Or(Vec<CFormula>),
    /// `∃x : Q`.
    ExistsRat(String, Box<CFormula>),
    /// `∀x : Q`.
    ForallRat(String, Box<CFormula>),
    /// `∃S : {Q^k}`.
    ExistsSet(String, u32, Box<CFormula>),
    /// `∀S : {Q^k}`.
    ForallSet(String, u32, Box<CFormula>),
    /// `∃T : {{Q^k}}`.
    ExistsSetSet(String, u32, Box<CFormula>),
    /// `∀T : {{Q^k}}`.
    ForallSetSet(String, u32, Box<CFormula>),
}

impl CFormula {
    /// Convenience: implication.
    pub fn implies(a: CFormula, b: CFormula) -> CFormula {
        CFormula::Or(vec![CFormula::Not(Box::new(a)), b])
    }

    /// The set-height of the formula: the maximum set-nesting of any
    /// quantified variable (0 = plain FO; Theorem 5.1: C-CALC₀ = FO).
    pub fn set_height(&self) -> usize {
        match self {
            CFormula::True
            | CFormula::False
            | CFormula::Compare(..)
            | CFormula::Pred(..)
            | CFormula::MemTuple(..)
            | CFormula::MemSet(..)
            | CFormula::SetEq(..) => 0,
            CFormula::Not(f) => f.set_height(),
            CFormula::And(fs) | CFormula::Or(fs) => {
                fs.iter().map(|f| f.set_height()).max().unwrap_or(0)
            }
            CFormula::ExistsRat(_, f) | CFormula::ForallRat(_, f) => f.set_height(),
            CFormula::ExistsSet(_, _, f) | CFormula::ForallSet(_, _, f) => f.set_height().max(1),
            CFormula::ExistsSetSet(_, _, f) | CFormula::ForallSetSet(_, _, f) => {
                f.set_height().max(2)
            }
        }
    }
}

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CCalcError {
    /// Unbound variable.
    Unbound(String),
    /// Unknown input predicate.
    UnknownPredicate(String),
    /// Active domain exceeds the configured enumeration cap.
    ActiveDomainTooLarge {
        /// What was being enumerated.
        what: String,
        /// Required count (log₂ for set ranges).
        log2_size: u32,
        /// Configured cap (log₂).
        log2_cap: u32,
    },
    /// Arity mismatch in membership or predicate.
    Arity(String),
}

impl fmt::Display for CCalcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CCalcError::Unbound(v) => write!(f, "unbound variable {v}"),
            CCalcError::UnknownPredicate(p) => write!(f, "unknown predicate {p}"),
            CCalcError::ActiveDomainTooLarge {
                what,
                log2_size,
                log2_cap,
            } => write!(
                f,
                "active domain of {what} has 2^{log2_size} elements (cap 2^{log2_cap})"
            ),
            CCalcError::Arity(m) => write!(f, "arity mismatch: {m}"),
        }
    }
}

impl std::error::Error for CCalcError {}

/// Evaluator configuration.
#[derive(Debug, Clone)]
pub struct CCalcConfig {
    /// log₂ cap on enumerated set ranges (default 20 → ≤ ~1M candidates).
    pub log2_max_range: u32,
}

impl Default for CCalcConfig {
    fn default() -> CCalcConfig {
        CCalcConfig { log2_max_range: 20 }
    }
}

/// Statistics from an evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CCalcStats {
    /// Set candidates enumerated across all set quantifiers.
    pub set_candidates: u64,
    /// Rational samples tried across all rational quantifiers.
    pub rat_samples: u64,
}

/// The C-CALC evaluator over a database of flat constraint relations.
pub struct CCalc<'db> {
    db: &'db Database,
    base_consts: Vec<Rational>,
    config: CCalcConfig,
    /// Mutated during evaluation.
    stats: CCalcStats,
}

#[derive(Clone, Default)]
struct Env {
    rat: BTreeMap<String, Rational>,
    set: BTreeMap<String, CanonicalSet>,
    setset: BTreeMap<String, BTreeSet<CanonicalSet>>,
}

impl<'db> CCalc<'db> {
    /// Create an evaluator for a database.
    pub fn new(db: &'db Database) -> CCalc<'db> {
        CCalc::with_config(db, CCalcConfig::default())
    }

    /// Create with explicit configuration.
    pub fn with_config(db: &'db Database, config: CCalcConfig) -> CCalc<'db> {
        let base_consts: Vec<Rational> = db.constants().into_iter().collect();
        CCalc {
            db,
            base_consts,
            config,
            stats: CCalcStats::default(),
        }
    }

    /// The cell space set variables of arity `k` range over.
    pub fn base_space(&self, k: u32) -> CellSpace {
        CellSpace::new(k, self.base_consts.iter().copied())
    }

    /// Number of k-cells — the active domain of a `{Q^k}` variable has
    /// `2^cells(k)` elements (Theorem 5.2's PSPACE side in the flesh).
    pub fn cells(&self, k: u32) -> usize {
        self.base_space(k).enumerate().len()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CCalcStats {
        &self.stats
    }

    /// Extend the constant pool with constants mentioned in a formula.
    /// Rational quantifiers sample one point per 1-cell of the pool, so
    /// completeness requires covering every constant the formula compares
    /// against; the `eval_*` entry points call this automatically.
    fn absorb_formula_consts(&mut self, f: &CFormula) {
        let mut pool: std::collections::BTreeSet<Rational> =
            self.base_consts.iter().copied().collect();
        collect_consts(f, &mut pool);
        self.base_consts = pool.into_iter().collect();
    }

    /// Evaluate a sentence (no free variables).
    pub fn eval_sentence(&mut self, f: &CFormula) -> Result<bool, CCalcError> {
        self.absorb_formula_consts(f);
        let env = Env::default();
        self.eval(f, &env)
    }

    /// Evaluate a set term `{(x̄) | φ}` with one set variable pre-bound —
    /// the iteration step of the fixpoint/while constructs (Theorem 5.6,
    /// see [`crate::fixpoint`]).
    pub fn comprehend_with_set(
        &mut self,
        set_var: &str,
        value: &CanonicalSet,
        vars: &[String],
        body: &CFormula,
    ) -> Result<CanonicalSet, CCalcError> {
        self.absorb_formula_consts(body);
        let mut env = Env::default();
        env.set.insert(set_var.to_string(), value.clone());
        self.comprehend(vars, body, &env)
    }

    /// Evaluate a set term `{(x̄) | φ}` (φ closed except for x̄) into a
    /// generalized relation — the non-boolean query output.
    pub fn eval_set_term(
        &mut self,
        vars: &[String],
        body: &CFormula,
    ) -> Result<GeneralizedRelation, CCalcError> {
        self.absorb_formula_consts(body);
        let env = Env::default();
        let set = self.comprehend(vars, body, &env)?;
        Ok(set.to_relation(&self.base_space(vars.len() as u32)))
    }

    fn eval(&mut self, f: &CFormula, env: &Env) -> Result<bool, CCalcError> {
        match f {
            CFormula::True => Ok(true),
            CFormula::False => Ok(false),
            CFormula::Compare(l, op, r) => {
                let lv = self.rat_value(l, env)?;
                let rv = self.rat_value(r, env)?;
                Ok(op.eval(&lv, &rv))
            }
            CFormula::Pred(name, args) => {
                let rel = self
                    .db
                    .get(name)
                    .ok_or_else(|| CCalcError::UnknownPredicate(name.clone()))?;
                if rel.arity() as usize != args.len() {
                    return Err(CCalcError::Arity(format!(
                        "{name} used at {} (declared {})",
                        args.len(),
                        rel.arity()
                    )));
                }
                let point = args
                    .iter()
                    .map(|a| self.rat_value(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(rel.contains_point(&point))
            }
            CFormula::MemTuple(terms, set_ref) => {
                let point = terms
                    .iter()
                    .map(|t| self.rat_value(t, env))
                    .collect::<Result<Vec<_>, _>>()?;
                let set = self.resolve_set(set_ref, env)?;
                if set.arity() as usize != point.len() {
                    return Err(CCalcError::Arity(format!(
                        "tuple of arity {} in set of arity {}",
                        point.len(),
                        set.arity()
                    )));
                }
                Ok(set.contains_point(&self.base_space(set.arity()), &point))
            }
            CFormula::MemSet(set_ref, t) => {
                let s = self.resolve_set(set_ref, env)?;
                let family = env
                    .setset
                    .get(t)
                    .ok_or_else(|| CCalcError::Unbound(t.clone()))?;
                Ok(family.contains(&s))
            }
            CFormula::SetEq(a, b) => {
                let sa = self.resolve_set(a, env)?;
                let sb = self.resolve_set(b, env)?;
                Ok(sa == sb)
            }
            CFormula::Not(g) => Ok(!self.eval(g, env)?),
            CFormula::And(gs) => {
                for g in gs {
                    if !self.eval(g, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            CFormula::Or(gs) => {
                for g in gs {
                    if self.eval(g, env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            CFormula::ExistsRat(x, g) => self.quant_rat(x, g, env, true),
            CFormula::ForallRat(x, g) => self.quant_rat(x, g, env, false),
            CFormula::ExistsSet(s, k, g) => self.quant_set(s, *k, g, env, true),
            CFormula::ForallSet(s, k, g) => self.quant_set(s, *k, g, env, false),
            CFormula::ExistsSetSet(t, k, g) => self.quant_setset(t, *k, g, env, true),
            CFormula::ForallSetSet(t, k, g) => self.quant_setset(t, *k, g, env, false),
        }
    }

    fn rat_value(&self, t: &RatTerm, env: &Env) -> Result<Rational, CCalcError> {
        match t {
            RatTerm::Const(c) => Ok(*c),
            RatTerm::Var(v) => env
                .rat
                .get(v)
                .copied()
                .ok_or_else(|| CCalcError::Unbound(v.clone())),
        }
    }

    fn resolve_set(&mut self, r: &SetRef, env: &Env) -> Result<CanonicalSet, CCalcError> {
        match r {
            SetRef::Var(v) => env
                .set
                .get(v)
                .cloned()
                .ok_or_else(|| CCalcError::Unbound(v.clone())),
            SetRef::Comprehension(vars, body) => self.comprehend(vars, body, env),
        }
    }

    /// `{(x̄) | φ}` as a union of base cells: include a cell iff φ holds at
    /// its sample point.
    fn comprehend(
        &mut self,
        vars: &[String],
        body: &CFormula,
        env: &Env,
    ) -> Result<CanonicalSet, CCalcError> {
        let k = vars.len() as u32;
        let space = self.base_space(k);
        let cells = space.enumerate();
        let mut members = BTreeSet::new();
        for (i, cell) in cells.iter().enumerate() {
            let sample = space.sample(cell);
            let mut env2 = env.clone();
            for (v, val) in vars.iter().zip(&sample) {
                env2.rat.insert(v.clone(), *val);
            }
            if self.eval(body, &env2)? {
                members.insert(i);
            }
        }
        Ok(CanonicalSet::from_cells(k, members))
    }

    /// Rational quantification by 1-cell sampling over the input constants
    /// extended with the rationals already pinned in the environment.
    fn quant_rat(
        &mut self,
        x: &str,
        body: &CFormula,
        env: &Env,
        existential: bool,
    ) -> Result<bool, CCalcError> {
        let consts: BTreeSet<Rational> = self
            .base_consts
            .iter()
            .copied()
            .chain(env.rat.values().copied())
            .collect();
        let space = CellSpace::new(1, consts);
        for cell in space.enumerate() {
            self.stats.rat_samples += 1;
            let sample = space.sample(&cell)[0];
            let mut env2 = env.clone();
            env2.rat.insert(x.to_string(), sample);
            let v = self.eval(body, &env2)?;
            if v == existential {
                return Ok(existential);
            }
        }
        Ok(!existential)
    }

    /// Set quantification: enumerate all unions of k-cells (2^cells).
    fn quant_set(
        &mut self,
        s: &str,
        k: u32,
        body: &CFormula,
        env: &Env,
        existential: bool,
    ) -> Result<bool, CCalcError> {
        let n = self.cells(k);
        self.check_range(n, &format!("set variable {s} : {{Q^{k}}}"))?;
        for mask in 0u64..(1u64 << n) {
            self.stats.set_candidates += 1;
            let cells: BTreeSet<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            let mut env2 = env.clone();
            env2.set
                .insert(s.to_string(), CanonicalSet::from_cells(k, cells));
            let v = self.eval(body, &env2)?;
            if v == existential {
                return Ok(existential);
            }
        }
        Ok(!existential)
    }

    /// Height-2 quantification: all finite families of height-1 sets —
    /// 2^(2^cells) candidates; only tiny inputs are feasible, which is the
    /// hierarchy theorem made tangible.
    fn quant_setset(
        &mut self,
        t: &str,
        k: u32,
        body: &CFormula,
        env: &Env,
        existential: bool,
    ) -> Result<bool, CCalcError> {
        let n = self.cells(k);
        self.check_range(n, &format!("inner sets of {t}"))?;
        let inner: u64 = 1u64 << n;
        if inner > 20 {
            return Err(CCalcError::ActiveDomainTooLarge {
                what: format!("set-of-sets variable {t} : {{{{Q^{k}}}}}"),
                log2_size: inner.min(u32::MAX as u64) as u32,
                log2_cap: 20,
            });
        }
        for family_mask in 0u64..(1u64 << inner) {
            self.stats.set_candidates += 1;
            let family: BTreeSet<CanonicalSet> = (0..inner)
                .filter(|i| family_mask & (1u64 << i) != 0)
                .map(|mask| {
                    let cells: BTreeSet<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
                    CanonicalSet::from_cells(k, cells)
                })
                .collect();
            let mut env2 = env.clone();
            env2.setset.insert(t.to_string(), family);
            let v = self.eval(body, &env2)?;
            if v == existential {
                return Ok(existential);
            }
        }
        Ok(!existential)
    }

    fn check_range(&self, n_cells: usize, what: &str) -> Result<(), CCalcError> {
        if n_cells as u32 > self.config.log2_max_range {
            return Err(CCalcError::ActiveDomainTooLarge {
                what: what.to_string(),
                log2_size: n_cells as u32,
                log2_cap: self.config.log2_max_range,
            });
        }
        Ok(())
    }
}

/// Collect the rational constants mentioned anywhere in a formula.
fn collect_consts(f: &CFormula, out: &mut std::collections::BTreeSet<Rational>) {
    let mut terms = |ts: &[RatTerm]| {
        for t in ts {
            if let RatTerm::Const(c) = t {
                out.insert(*c);
            }
        }
    };
    match f {
        CFormula::True | CFormula::False => {}
        CFormula::Compare(l, _, r) => terms(&[l.clone(), r.clone()]),
        CFormula::Pred(_, args) | CFormula::MemTuple(args, _) => {
            terms(args);
            if let CFormula::MemTuple(_, SetRef::Comprehension(_, body)) = f {
                collect_consts(body, out);
            }
        }
        CFormula::MemSet(s, _) => {
            if let SetRef::Comprehension(_, body) = s {
                collect_consts(body, out);
            }
        }
        CFormula::SetEq(a, b) => {
            for r in [a, b] {
                if let SetRef::Comprehension(_, body) = r {
                    collect_consts(body, out);
                }
            }
        }
        CFormula::Not(g) => collect_consts(g, out),
        CFormula::And(gs) | CFormula::Or(gs) => {
            for g in gs {
                collect_consts(g, out);
            }
        }
        CFormula::ExistsRat(_, g)
        | CFormula::ForallRat(_, g)
        | CFormula::ExistsSet(_, _, g)
        | CFormula::ForallSet(_, _, g)
        | CFormula::ExistsSetSet(_, _, g)
        | CFormula::ForallSetSet(_, _, g) => collect_consts(g, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CFormula as F;

    fn finite_graph(edges: &[(i64, i64)]) -> Database {
        let e = GeneralizedRelation::from_points(
            2,
            edges
                .iter()
                .map(|&(a, b)| vec![rat(a as i128, 1), rat(b as i128, 1)]),
        );
        Database::new(Schema::new().with("e", 2)).with("e", e)
    }

    /// reach(a, b) := ∀S [ a∈S ∧ ∀u∀v (u∈S ∧ e(u,v) → v∈S) → b∈S ]
    /// — transitive reachability in C-CALC₁ (the Theorem 5.2 lower-bound
    /// construction: PTIME queries via one level of set nesting).
    fn reach(a: i64, b: i64) -> CFormula {
        let s_closed = F::ForallRat(
            "u".into(),
            Box::new(F::ForallRat(
                "v".into(),
                Box::new(CFormula::implies(
                    F::And(vec![
                        F::MemTuple(vec![RatTerm::var("u")], SetRef::Var("S".into())),
                        F::Pred("e".into(), vec![RatTerm::var("u"), RatTerm::var("v")]),
                    ]),
                    F::MemTuple(vec![RatTerm::var("v")], SetRef::Var("S".into())),
                )),
            )),
        );
        F::ForallSet(
            "S".into(),
            1,
            Box::new(CFormula::implies(
                F::And(vec![
                    F::MemTuple(
                        vec![RatTerm::cst(rat(a as i128, 1))],
                        SetRef::Var("S".into()),
                    ),
                    s_closed,
                ]),
                F::MemTuple(
                    vec![RatTerm::cst(rat(b as i128, 1))],
                    SetRef::Var("S".into()),
                ),
            )),
        )
    }

    #[test]
    fn set_heights_of_formulas() {
        assert_eq!(reach(1, 2).set_height(), 1);
        let fo = F::ExistsRat(
            "x".into(),
            Box::new(F::Compare(
                RatTerm::var("x"),
                RawOp::Lt,
                RatTerm::cst(rat(1, 1)),
            )),
        );
        assert_eq!(fo.set_height(), 0);
    }

    #[test]
    fn reachability_positive() {
        let db = finite_graph(&[(1, 2), (2, 3)]);
        let mut ev = CCalc::new(&db);
        assert!(ev.eval_sentence(&reach(1, 3)).unwrap());
        assert!(ev.eval_sentence(&reach(1, 2)).unwrap());
        assert!(ev.eval_sentence(&reach(2, 3)).unwrap());
    }

    #[test]
    fn reachability_negative() {
        let db = finite_graph(&[(1, 2), (3, 2)]);
        let mut ev = CCalc::new(&db);
        assert!(!ev.eval_sentence(&reach(1, 3)).unwrap());
        assert!(!ev.eval_sentence(&reach(2, 1)).unwrap());
    }

    #[test]
    fn fo_fragment_sentences() {
        let db = finite_graph(&[(1, 2)]);
        let mut ev = CCalc::new(&db);
        // ∃x∃y e(x,y)
        let f = F::ExistsRat(
            "x".into(),
            Box::new(F::ExistsRat(
                "y".into(),
                Box::new(F::Pred(
                    "e".into(),
                    vec![RatTerm::var("x"), RatTerm::var("y")],
                )),
            )),
        );
        assert!(ev.eval_sentence(&f).unwrap());
        // ∀x∀y (e(x,y) → x < y)
        let g = F::ForallRat(
            "x".into(),
            Box::new(F::ForallRat(
                "y".into(),
                Box::new(CFormula::implies(
                    F::Pred("e".into(), vec![RatTerm::var("x"), RatTerm::var("y")]),
                    F::Compare(RatTerm::var("x"), RawOp::Lt, RatTerm::var("y")),
                )),
            )),
        );
        assert!(ev.eval_sentence(&g).unwrap());
    }

    #[test]
    fn rational_quantifier_uses_gap_witnesses() {
        // density: between the two constants of the db there is a point
        let db = finite_graph(&[(0, 10)]);
        let mut ev = CCalc::new(&db);
        let f = F::ExistsRat(
            "x".into(),
            Box::new(F::And(vec![
                F::Compare(RatTerm::cst(rat(0, 1)), RawOp::Lt, RatTerm::var("x")),
                F::Compare(RatTerm::var("x"), RawOp::Lt, RatTerm::cst(rat(10, 1))),
            ])),
        );
        assert!(ev.eval_sentence(&f).unwrap());
        // nested: ∃x∃y 0 < x < y < 10 — needs the env-extended constant set
        let g = F::ExistsRat(
            "x".into(),
            Box::new(F::And(vec![
                F::Compare(RatTerm::cst(rat(0, 1)), RawOp::Lt, RatTerm::var("x")),
                F::ExistsRat(
                    "y".into(),
                    Box::new(F::And(vec![
                        F::Compare(RatTerm::var("x"), RawOp::Lt, RatTerm::var("y")),
                        F::Compare(RatTerm::var("y"), RawOp::Lt, RatTerm::cst(rat(10, 1))),
                    ])),
                ),
            ])),
        );
        assert!(ev.eval_sentence(&g).unwrap());
    }

    #[test]
    fn set_term_output() {
        // {x | ∃y e(x,y)} — the domain of e
        let db = finite_graph(&[(1, 2), (3, 4)]);
        let mut ev = CCalc::new(&db);
        let body = F::ExistsRat(
            "y".into(),
            Box::new(F::Pred(
                "e".into(),
                vec![RatTerm::var("x"), RatTerm::var("y")],
            )),
        );
        let rel = ev.eval_set_term(&["x".to_string()], &body).unwrap();
        assert!(rel.contains_point(&[rat(1, 1)]));
        assert!(rel.contains_point(&[rat(3, 1)]));
        assert!(!rel.contains_point(&[rat(2, 1)]));
        assert!(!rel.contains_point(&[rat(99, 1)]));
    }

    #[test]
    fn setset_quantifier_tiny() {
        // Over a db with a single constant (3 one-cells): ∃T ∃S (S ∈ T)
        let db = finite_graph(&[(1, 1)]);
        let mut ev = CCalc::new(&db);
        let f = F::ExistsSetSet(
            "T".into(),
            1,
            Box::new(F::ExistsSet(
                "S".into(),
                1,
                Box::new(F::MemSet(SetRef::Var("S".into()), "T".into())),
            )),
        );
        assert!(ev.eval_sentence(&f).unwrap());
        // ∀T ∀S (S ∈ T) is false (empty family)
        let g = F::ForallSetSet(
            "T".into(),
            1,
            Box::new(F::ForallSet(
                "S".into(),
                1,
                Box::new(F::MemSet(SetRef::Var("S".into()), "T".into())),
            )),
        );
        assert!(!ev.eval_sentence(&g).unwrap());
    }

    #[test]
    fn active_domain_cap_enforced() {
        let db = finite_graph(&[(1, 2), (3, 4), (5, 6), (7, 8), (9, 10), (11, 12)]);
        let mut ev = CCalc::with_config(&db, CCalcConfig { log2_max_range: 4 });
        // 12 constants → 25 one-cells > 2^4 cap
        let f = F::ExistsSet("S".into(), 1, Box::new(F::True));
        assert!(matches!(
            ev.eval_sentence(&f),
            Err(CCalcError::ActiveDomainTooLarge { .. })
        ));
    }

    #[test]
    fn formula_constants_extend_the_sample_pool() {
        // db constants {1}; the formula compares against 5, which must be
        // in the quantifier sample pool for ∃x (x > 5) to be decided
        // correctly (regression: pool used to be db-only).
        let db = finite_graph(&[(1, 1)]);
        let mut ev = CCalc::new(&db);
        let f = F::ExistsRat(
            "x".into(),
            Box::new(F::Compare(
                RatTerm::var("x"),
                RawOp::Gt,
                RatTerm::cst(rat(5, 1)),
            )),
        );
        assert!(ev.eval_sentence(&f).unwrap());
        // and the dual: ∀x (x <= 5) must be false
        let g = F::ForallRat(
            "x".into(),
            Box::new(F::Compare(
                RatTerm::var("x"),
                RawOp::Le,
                RatTerm::cst(rat(5, 1)),
            )),
        );
        let mut ev2 = CCalc::new(&db);
        assert!(!ev2.eval_sentence(&g).unwrap());
    }

    #[test]
    fn stats_accumulate() {
        let db = finite_graph(&[(1, 2)]);
        let mut ev = CCalc::new(&db);
        let _ = ev.eval_sentence(&reach(1, 2)).unwrap();
        assert!(ev.stats().set_candidates > 0);
        assert!(ev.stats().rat_samples > 0);
    }
}
