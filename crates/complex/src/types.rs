//! Types and values for complex constraint objects (§5).
//!
//! "Complex constraint objects are composed from finitely representable
//! sets by the tuple and set constructs." The type grammar is
//!
//! ```text
//! τ ::= Q | ⟨τ₁, …, τ_k⟩ | {τ}
//! ```
//!
//! and the *set-height* of a type — the maximal number of set constructs on
//! a root-to-leaf path \[HS91\] — stratifies the calculus into `C-CALC_i`
//! (Theorems 5.2–5.4). Values mirror the grammar:
//!
//! * a `{⟨Q,…,Q⟩}`-typed value is a finitely representable (possibly
//!   infinite) pointset, stored in **canonical cell form** over a fixed
//!   ambient constant set so values compare and hash structurally;
//! * a value of a type with set-height ≥ 2 is a *finite* set of values
//!   (the paper's active-domain semantics makes every such range finite).

use dco_core::prelude::*;
use std::collections::BTreeSet;
use std::fmt;

/// A complex-object type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CType {
    /// The base type of rationals.
    Rat,
    /// A tuple type.
    Tuple(Vec<CType>),
    /// A set type.
    Set(Box<CType>),
}

impl CType {
    /// A set of flat k-tuples, `{⟨Q, …, Q⟩}` — the type of classical
    /// finitely representable relations.
    pub fn relation(k: u32) -> CType {
        CType::Set(Box::new(CType::Tuple(vec![CType::Rat; k as usize])))
    }

    /// The set-height: maximal number of set constructs on a path.
    pub fn set_height(&self) -> usize {
        match self {
            CType::Rat => 0,
            CType::Tuple(ts) => ts.iter().map(CType::set_height).max().unwrap_or(0),
            CType::Set(t) => 1 + t.set_height(),
        }
    }

    /// Is this type "flat": a (tuple of) rationals?
    pub fn is_flat(&self) -> bool {
        self.set_height() == 0
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Rat => write!(f, "Q"),
            CType::Tuple(ts) => {
                let parts: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
                write!(f, "<{}>", parts.join(", "))
            }
            CType::Set(t) => write!(f, "{{{t}}}"),
        }
    }
}

/// A finitely representable pointset in canonical cell form over an ambient
/// constant set: the arity plus the sorted set of member cell indices.
/// Two `CanonicalSet`s over the same ambient space are equal iff they
/// denote the same pointset — the structural equality §5's set semantics
/// needs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CanonicalSet {
    arity: u32,
    cells: BTreeSet<usize>,
}

impl CanonicalSet {
    /// The empty set of k-tuples.
    pub fn empty(arity: u32) -> CanonicalSet {
        CanonicalSet {
            arity,
            cells: BTreeSet::new(),
        }
    }

    /// From explicit member cell indices.
    pub fn from_cells(arity: u32, cells: BTreeSet<usize>) -> CanonicalSet {
        CanonicalSet { arity, cells }
    }

    /// Canonicalize a relation over the given ambient space (which must
    /// cover its constants).
    pub fn from_relation(space: &CellSpace, rel: &GeneralizedRelation) -> CanonicalSet {
        let form = space.canonicalize(rel);
        CanonicalSet {
            arity: rel.arity(),
            cells: form.members().clone(),
        }
    }

    /// Realize as a generalized relation.
    pub fn to_relation(&self, space: &CellSpace) -> GeneralizedRelation {
        let all = space.enumerate();
        GeneralizedRelation::from_tuples(
            self.arity,
            self.cells.iter().map(|&i| space.to_tuple(&all[i])),
        )
    }

    /// Arity of the member tuples.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Member cell indices.
    pub fn cells(&self) -> &BTreeSet<usize> {
        &self.cells
    }

    /// Does the set contain the cell of the given point (w.r.t. the space)?
    pub fn contains_point(&self, space: &CellSpace, point: &[Rational]) -> bool {
        let cell = space.locate(point);
        match space.index_of(&cell) {
            Some(i) => self.cells.contains(&i),
            // a point outside the space's cell structure (uses constants the
            // space doesn't know) can never be in a set definable over it
            None => false,
        }
    }
}

/// A complex-object value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CValue {
    /// A rational.
    Rat(Rational),
    /// A tuple of values.
    Tuple(Vec<CValue>),
    /// A finitely representable set of flat tuples (set-height 1 over a
    /// flat element type), in canonical cell form.
    Rel(CanonicalSet),
    /// A finite set of nested values (set-height ≥ 2).
    Fin(BTreeSet<CValue>),
}

impl CValue {
    /// Type-check the value against a type (structural).
    pub fn has_type(&self, ty: &CType) -> bool {
        match (self, ty) {
            (CValue::Rat(_), CType::Rat) => true,
            (CValue::Tuple(vs), CType::Tuple(ts)) => {
                vs.len() == ts.len() && vs.iter().zip(ts).all(|(v, t)| v.has_type(t))
            }
            (CValue::Rel(r), CType::Set(inner)) => match &**inner {
                CType::Tuple(ts) => {
                    ts.len() == r.arity() as usize && ts.iter().all(|t| *t == CType::Rat)
                }
                CType::Rat => r.arity() == 1,
                _ => false,
            },
            (CValue::Fin(vs), CType::Set(inner)) => vs.iter().all(|v| v.has_type(inner)),
            _ => false,
        }
    }
}

impl fmt::Display for CValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CValue::Rat(r) => write!(f, "{r}"),
            CValue::Tuple(vs) => {
                let parts: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
                write!(f, "<{}>", parts.join(", "))
            }
            CValue::Rel(r) => write!(f, "{{|{} cells, arity {}|}}", r.cells().len(), r.arity()),
            CValue::Fin(vs) => {
                let parts: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
                write!(f, "{{{}}}", parts.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_heights() {
        assert_eq!(CType::Rat.set_height(), 0);
        assert_eq!(CType::relation(2).set_height(), 1);
        assert_eq!(CType::Set(Box::new(CType::relation(1))).set_height(), 2);
        let mixed = CType::Tuple(vec![CType::Rat, CType::relation(3)]);
        assert_eq!(mixed.set_height(), 1);
    }

    #[test]
    fn canonical_set_equality_is_semantic() {
        let space = CellSpace::new(1, vec![rat(0, 1), rat(10, 1)]);
        let a = GeneralizedRelation::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        // same set, different syntax: [0,10] = [0,10] ∪ {0}
        let b = a.union(&GeneralizedRelation::from_points(1, vec![vec![rat(0, 1)]]));
        let ca = CanonicalSet::from_relation(&space, &a);
        let cb = CanonicalSet::from_relation(&space, &b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn canonical_set_membership() {
        let space = CellSpace::new(1, vec![rat(0, 1), rat(10, 1)]);
        let a = GeneralizedRelation::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Lt, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(rat(10, 1))),
            ],
        );
        let c = CanonicalSet::from_relation(&space, &a);
        assert!(c.contains_point(&space, &[rat(5, 1)]));
        assert!(!c.contains_point(&space, &[rat(0, 1)]));
        assert!(!c.contains_point(&space, &[rat(11, 1)]));
    }

    #[test]
    fn roundtrip_realization() {
        let space = CellSpace::new(1, vec![rat(0, 1)]);
        let a = GeneralizedRelation::from_raw(
            1,
            vec![RawAtom::new(Term::cst(rat(0, 1)), RawOp::Lt, Term::var(0))],
        );
        let c = CanonicalSet::from_relation(&space, &a);
        let back = c.to_relation(&space);
        assert!(back.equivalent(&a));
    }

    #[test]
    fn typing() {
        let v = CValue::Tuple(vec![CValue::Rat(rat(1, 1)), CValue::Rat(rat(2, 1))]);
        assert!(v.has_type(&CType::Tuple(vec![CType::Rat, CType::Rat])));
        assert!(!v.has_type(&CType::Rat));
        let space = CellSpace::new(1, vec![]);
        let r = CValue::Rel(CanonicalSet::from_relation(
            &space,
            &GeneralizedRelation::universe(1),
        ));
        assert!(r.has_type(&CType::relation(1)));
        assert!(r.has_type(&CType::Set(Box::new(CType::Rat))));
        let nested = CValue::Fin([r.clone()].into_iter().collect());
        assert!(nested.has_type(&CType::Set(Box::new(CType::relation(1)))));
    }
}
