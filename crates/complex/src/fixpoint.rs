//! C-CALC + fixpoint (Theorem 5.6).
//!
//! "We can also extend C-CALC with fixpoint and while constructs similarly
//! to \[KKR90, GV91\]. The following can be shown: Theorem 5.6 — for each
//! i ≥ 0, C-CALC_i + fixpoint = H_i-TIME and C-CALC_i + while = H_i-SPACE."
//!
//! We implement the inflationary fixpoint construct over set terms:
//! `fix S. {(x̄) | φ(S, x̄)}` iterates `S₀ = ∅`,
//! `S_{n+1} = S_n ∪ {x̄ | φ(S_n, x̄)}` until stabilization. Each stage is a
//! union of cells of the input space, so the iteration lives in a finite
//! lattice of height `#cells` and always terminates — in at most `2^#cells`
//! *while*-style stages for the non-inflationary variant, also provided
//! ([`CCalc::eval_while`]), which stops on the first repeat instead.

use crate::ccalc::{CCalc, CCalcError, CFormula};
use crate::types::CanonicalSet;
use dco_core::prelude::GeneralizedRelation;
use std::collections::BTreeSet;

impl<'db> CCalc<'db> {
    /// Inflationary fixpoint of a set term: iterate
    /// `S ← S ∪ {(x̄) | φ}` with `set_var` bound to the current `S`,
    /// starting from the empty set, until no cell is added. Returns the
    /// fixpoint as a relation.
    pub fn eval_fixpoint(
        &mut self,
        set_var: &str,
        vars: &[String],
        body: &CFormula,
    ) -> Result<GeneralizedRelation, CCalcError> {
        let k = vars.len() as u32;
        let mut current = CanonicalSet::empty(k);
        let cells = self.cells(k);
        for _stage in 0..=cells {
            let next = self.comprehend_with_set(set_var, &current, vars, body)?;
            let merged =
                CanonicalSet::from_cells(k, current.cells().union(next.cells()).copied().collect());
            if merged == current {
                break;
            }
            current = merged;
        }
        Ok(current.to_relation(&self.base_space(k)))
    }

    /// Non-inflationary ("while") iteration: `S ← {(x̄) | φ(S)}` until the
    /// value repeats; returns the sequence's final value (the first value
    /// seen twice). Unlike the inflationary construct this can oscillate —
    /// detection uses the full history, bounding stages by `2^#cells`
    /// (the H_i-SPACE flavor of Theorem 5.6).
    pub fn eval_while(
        &mut self,
        set_var: &str,
        vars: &[String],
        body: &CFormula,
        max_stages: usize,
    ) -> Result<GeneralizedRelation, CCalcError> {
        let k = vars.len() as u32;
        let mut current = CanonicalSet::empty(k);
        let mut seen: BTreeSet<CanonicalSet> = BTreeSet::new();
        for _ in 0..max_stages {
            if !seen.insert(current.clone()) {
                break;
            }
            current = self.comprehend_with_set(set_var, &current, vars, body)?;
        }
        Ok(current.to_relation(&self.base_space(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccalc::{RatTerm, SetRef};
    use dco_core::prelude::*;
    use CFormula as F;

    fn graph(edges: &[(i64, i64)]) -> Database {
        let e = GeneralizedRelation::from_points(
            2,
            edges
                .iter()
                .map(|&(a, b)| vec![rat(a as i128, 1), rat(b as i128, 1)]),
        );
        Database::new(Schema::new().with("e", 2)).with("e", e)
    }

    /// φ(S, x) = "x is a source" ∨ ∃u (u ∈ S ∧ e(u, x)) — fixpoint is the
    /// set reachable from source 1.
    fn reach_body() -> CFormula {
        F::Or(vec![
            F::Compare(RatTerm::var("x"), RawOp::Eq, RatTerm::cst(rat(1, 1))),
            F::ExistsRat(
                "u".into(),
                Box::new(F::And(vec![
                    F::MemTuple(vec![RatTerm::var("u")], SetRef::Var("S".into())),
                    F::Pred("e".into(), vec![RatTerm::var("u"), RatTerm::var("x")]),
                ])),
            ),
        ])
    }

    #[test]
    fn fixpoint_computes_reachable_set() {
        let db = graph(&[(1, 2), (2, 3), (5, 4)]);
        let mut ev = CCalc::new(&db);
        let reach = ev
            .eval_fixpoint("S", &["x".to_string()], &reach_body())
            .unwrap();
        for v in [1i128, 2, 3] {
            assert!(reach.contains_point(&[rat(v, 1)]), "{v} reachable");
        }
        for v in [4i128, 5] {
            assert!(!reach.contains_point(&[rat(v, 1)]), "{v} not reachable");
        }
    }

    #[test]
    fn fixpoint_agrees_with_ccalc1_quantifier() {
        // fix-based reach(1, 3) must agree with the ∀S encoding
        let db = graph(&[(1, 2), (2, 3)]);
        let mut ev = CCalc::new(&db);
        let reach = ev
            .eval_fixpoint("S", &["x".to_string()], &reach_body())
            .unwrap();
        assert!(reach.contains_point(&[rat(3, 1)]));
        let db2 = graph(&[(1, 2), (3, 2)]);
        let mut ev2 = CCalc::new(&db2);
        let reach2 = ev2
            .eval_fixpoint("S", &["x".to_string()], &reach_body())
            .unwrap();
        assert!(!reach2.contains_point(&[rat(3, 1)]));
    }

    #[test]
    fn while_oscillation_terminates() {
        // φ(S, x) = x = 1 ∧ ¬(x ∈ S): alternates between ∅-ish and {1}
        let db = graph(&[(1, 1)]);
        let body = F::And(vec![
            F::Compare(RatTerm::var("x"), RawOp::Eq, RatTerm::cst(rat(1, 1))),
            F::Not(Box::new(F::MemTuple(
                vec![RatTerm::var("x")],
                SetRef::Var("S".into()),
            ))),
        ]);
        let mut ev = CCalc::new(&db);
        // must terminate despite the oscillation (history detection)
        let out = ev.eval_while("S", &["x".to_string()], &body, 64).unwrap();
        let _ = out; // value depends on phase; termination is the point
    }

    #[test]
    fn fixpoint_stage_bound() {
        // long chain: fixpoint needs a stage per vertex, all within #cells
        let edges: Vec<(i64, i64)> = (1..6).map(|i| (i, i + 1)).collect();
        let db = graph(&edges);
        let mut ev = CCalc::new(&db);
        let reach = ev
            .eval_fixpoint("S", &["x".to_string()], &reach_body())
            .unwrap();
        assert!(reach.contains_point(&[rat(6, 1)]));
    }
}
