//! Property tests for the hash-consed tuple kernel: the interned fast paths
//! (fingerprints, incremental satisfiability, bounding-box pruning) must be
//! *structurally* invisible — every algebra operation returns bit-identical
//! relations whether the fast paths are on (`EvalConfig::interned_kernel`)
//! or off (`EvalConfig::seed_kernel`).

use dco_core::intern::intern_tuple;
use dco_core::prelude::*;
use proptest::prelude::*;

fn arb_term(arity: u32) -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..arity).prop_map(Term::var),
        (-6i64..6).prop_map(|c| Term::cst(rat(c as i128, 1))),
        (-12i64..12, 2i64..5).prop_map(|(n, d)| Term::cst(rat(n as i128, d as i128))),
    ]
}

fn arb_rawop() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        Just(RawOp::Lt),
        Just(RawOp::Le),
        Just(RawOp::Eq),
        Just(RawOp::Ne),
        Just(RawOp::Ge),
        Just(RawOp::Gt),
    ]
}

fn arb_raws(arity: u32) -> impl Strategy<Value = Vec<RawAtom>> {
    prop::collection::vec(
        (arb_term(arity), arb_rawop(), arb_term(arity))
            .prop_map(|(l, op, r)| RawAtom::new(l, op, r)),
        0..5,
    )
}

fn arb_relation(arity: u32) -> impl Strategy<Value = Vec<Vec<RawAtom>>> {
    prop::collection::vec(arb_raws(arity), 0..4)
}

/// Random *normalized* atoms — unlike [`GeneralizedTuple::from_raw`], a
/// sequence built this way is free to pass through unsatisfiable prefixes,
/// which is exactly what the incremental solver must detect.
fn arb_atoms(arity: u32) -> impl Strategy<Value = Vec<Atom>> {
    let op = prop_oneof![Just(CompOp::Lt), Just(CompOp::Le), Just(CompOp::Eq)];
    prop::collection::vec((arb_term(arity), op, arb_term(arity)), 0..6).prop_map(|triples| {
        triples
            .into_iter()
            .flat_map(|(l, op, r)| Atom::normalized(l, op, r).into_iter().flatten())
            .collect()
    })
}

/// Materialize the raw description under the *current* EvalConfig (tuple
/// construction decides sat-state tracking at creation time, so building
/// inside the config scope matters).
fn build(arity: u32, raws: &[Vec<RawAtom>]) -> GeneralizedRelation {
    let mut rel = GeneralizedRelation::empty(arity);
    for rs in raws {
        for t in GeneralizedTuple::from_raw(arity, rs.clone()) {
            rel.insert(t);
        }
    }
    rel
}

/// Run `f` under both kernel configs and assert the results are
/// structurally identical (same tuples, same order — not merely
/// equivalent point sets).
fn assert_configs_agree(
    arity: u32,
    raws_a: &[Vec<RawAtom>],
    raws_b: &[Vec<RawAtom>],
    f: impl Fn(&GeneralizedRelation, &GeneralizedRelation) -> GeneralizedRelation,
) {
    let seed = with_eval_config(EvalConfig::seed_kernel(), || {
        let a = build(arity, raws_a);
        let b = build(arity, raws_b);
        f(&a, &b)
    });
    let interned = with_eval_config(EvalConfig::interned_kernel(), || {
        let a = build(arity, raws_a);
        let b = build(arity, raws_b);
        f(&a, &b)
    });
    assert_eq!(
        seed.tuples(),
        interned.tuples(),
        "seed and interned kernels diverged structurally"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- interned ≡ uninterned, structurally, for every core op ------

    #[test]
    fn kernels_agree_on_intersect(a in arb_relation(2), b in arb_relation(2)) {
        assert_configs_agree(2, &a, &b, |x, y| x.intersect(y));
    }

    #[test]
    fn kernels_agree_on_difference(a in arb_relation(2), b in arb_relation(2)) {
        assert_configs_agree(2, &a, &b, |x, y| x.difference(y));
    }

    #[test]
    fn kernels_agree_on_complement(a in arb_relation(2)) {
        assert_configs_agree(2, &a, &[], |x, _| x.complement());
    }

    #[test]
    fn kernels_agree_on_select_and_project(a in arb_relation(2)) {
        assert_configs_agree(2, &a, &[], |x, _| {
            x.select(RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)))
                .project_out(Var(1))
        });
    }

    // ---- incremental SatState ≡ batch solver on random prefixes ------

    #[test]
    fn incremental_verdict_matches_batch_on_prefixes(atoms in arb_atoms(3)) {
        with_eval_config(EvalConfig::interned_kernel(), || {
            let mut t = GeneralizedTuple::top(3);
            for atom in atoms {
                t.push(atom);
                let verdict = t.sat_verdict().expect("interned kernel tracks sat state");
                prop_assert_eq!(
                    verdict,
                    t.is_satisfiable_uncached(),
                    "prefix {} disagrees with the batch solver",
                    &t
                );
            }
        });
    }

    // ---- box pruning never changes intersect results -----------------

    #[test]
    fn box_pruned_intersect_matches_unpruned(a in arb_relation(2), b in arb_relation(2)) {
        let unpruned = with_eval_config(
            EvalConfig { prune_boxes: false, ..EvalConfig::default() },
            || build(2, &a).intersect(&build(2, &b)),
        );
        let pruned = with_eval_config(
            EvalConfig { prune_boxes: true, ..EvalConfig::default() },
            || build(2, &a).intersect(&build(2, &b)),
        );
        prop_assert_eq!(unpruned.tuples(), pruned.tuples());
    }

    // ---- boxes are sound over-approximations -------------------------

    #[test]
    fn box_disjoint_implies_empty_conjunction(a in arb_raws(2), b in arb_raws(2)) {
        for ta in GeneralizedTuple::from_raw(2, a.clone()) {
            for tb in GeneralizedTuple::from_raw(2, b.clone()) {
                if ta.box_disjoint(&tb) {
                    prop_assert!(
                        !ta.conjoin(&tb).is_satisfiable(),
                        "box-disjoint pair {} / {} is satisfiable together",
                        &ta, &tb
                    );
                }
            }
        }
    }

    // ---- fingerprints & interning ------------------------------------

    #[test]
    fn equal_tuples_share_fingerprint_and_handle(raws in arb_raws(2)) {
        for t in GeneralizedTuple::from_raw(2, raws.clone()) {
            // Rebuild through a different construction path: atom replay.
            let rebuilt = GeneralizedTuple::from_atoms(2, t.atoms().iter().copied());
            prop_assert_eq!(&rebuilt, &t);
            prop_assert_eq!(rebuilt.fingerprint(), t.fingerprint());
            prop_assert!(intern_tuple(&t).ptr_eq(&intern_tuple(&rebuilt)));
        }
    }
}
