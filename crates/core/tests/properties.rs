//! Property-based tests of the dense-order core: algebra laws, quantifier
//! elimination, canonical forms, witnesses — the invariants everything
//! downstream relies on, exercised on randomized relations.

use dco_core::prelude::*;
use proptest::prelude::*;

/// A random term over `arity` columns and small integer constants.
fn arb_term(arity: u32) -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..arity).prop_map(Term::var),
        (-6i64..6).prop_map(|c| Term::cst(rat(c as i128, 1))),
        (-12i64..12, 2i64..5).prop_map(|(n, d)| Term::cst(rat(n as i128, d as i128))),
    ]
}

fn arb_rawop() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        Just(RawOp::Lt),
        Just(RawOp::Le),
        Just(RawOp::Eq),
        Just(RawOp::Ne),
        Just(RawOp::Ge),
        Just(RawOp::Gt),
    ]
}

fn arb_tuple(arity: u32) -> impl Strategy<Value = Vec<RawAtom>> {
    prop::collection::vec(
        (arb_term(arity), arb_rawop(), arb_term(arity))
            .prop_map(|(l, op, r)| RawAtom::new(l, op, r)),
        0..4,
    )
}

/// A random generalized relation of the given arity.
fn arb_relation(arity: u32) -> impl Strategy<Value = GeneralizedRelation> {
    prop::collection::vec(arb_tuple(arity), 0..4).prop_map(move |tuples| {
        let mut rel = GeneralizedRelation::empty(arity);
        for raws in tuples {
            for t in GeneralizedTuple::from_raw(arity, raws) {
                rel.insert(t);
            }
        }
        rel
    })
}

/// A random probe point with constants overlapping the generator range.
fn arb_point(arity: u32) -> impl Strategy<Value = Vec<Rational>> {
    prop::collection::vec(
        prop_oneof![
            (-8i64..8).prop_map(|c| rat(c as i128, 1)),
            (-16i64..16, 2i64..5).prop_map(|(n, d)| rat(n as i128, d as i128)),
        ],
        arity as usize..=arity as usize,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- satisfiability and witnesses ------------------------------

    #[test]
    fn witness_satisfies_tuple(raws in arb_tuple(2)) {
        for t in GeneralizedTuple::from_raw(2, raws) {
            prop_assert!(t.is_satisfiable());
            let w = t.witness().expect("satisfiable tuple has a witness");
            prop_assert!(t.contains_point(&w), "witness {w:?} of {t}");
        }
    }

    #[test]
    fn membership_implies_satisfiable(raws in arb_tuple(2), p in arb_point(2)) {
        for t in GeneralizedTuple::from_raw(2, raws) {
            if t.contains_point(&p) {
                prop_assert!(t.is_satisfiable());
            }
        }
    }

    // ---- boolean algebra laws (checked pointwise) ------------------

    #[test]
    fn union_is_pointwise_or(a in arb_relation(2), b in arb_relation(2), p in arb_point(2)) {
        let u = a.union(&b);
        prop_assert_eq!(
            u.contains_point(&p),
            a.contains_point(&p) || b.contains_point(&p)
        );
    }

    #[test]
    fn intersection_is_pointwise_and(a in arb_relation(2), b in arb_relation(2), p in arb_point(2)) {
        let i = a.intersect(&b);
        prop_assert_eq!(
            i.contains_point(&p),
            a.contains_point(&p) && b.contains_point(&p)
        );
    }

    #[test]
    fn complement_is_pointwise_not(a in arb_relation(2), p in arb_point(2)) {
        let c = a.complement();
        prop_assert_eq!(c.contains_point(&p), !a.contains_point(&p));
    }

    #[test]
    fn difference_is_pointwise(a in arb_relation(2), b in arb_relation(2), p in arb_point(2)) {
        let d = a.difference(&b);
        prop_assert_eq!(
            d.contains_point(&p),
            a.contains_point(&p) && !b.contains_point(&p)
        );
    }

    #[test]
    fn de_morgan(a in arb_relation(1), b in arb_relation(1)) {
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersect(&b.complement());
        prop_assert!(lhs.equivalent(&rhs));
    }

    #[test]
    fn double_complement_identity(a in arb_relation(1)) {
        prop_assert!(a.complement().complement().equivalent(&a));
    }

    // ---- quantifier elimination ------------------------------------

    #[test]
    fn projection_is_exact_exists(a in arb_relation(2), p in arb_point(2)) {
        // ∃x1. A — check both directions at the probe point:
        // membership of (p0, _) in the projection must equal "some y makes
        // (p0, y) ∈ A". The right-hand side is checked by sampling the
        // projection's defining property: if p ∈ A then (p0,*) ∈ proj; and
        // if (p0, p1) ∈ proj then the tuple with x1 eliminated must be
        // witnessable — verified through witnesses of the conjunction.
        let proj = a.project_out(Var(1));
        if a.contains_point(&p) {
            prop_assert!(proj.contains_point(&p), "A ⊆ ∃y.A at {p:?}");
        }
        // soundness: a point in the projection extends to a full point
        if proj.contains_point(&p) {
            // conjoin x0 = p0 to A and ask for a witness
            let pinned = a.select(RawAtom::new(Term::var(0), RawOp::Eq, Term::Const(p[0])));
            prop_assert!(
                !pinned.is_empty(),
                "projection claims x0={} extends, but A has no such point",
                p[0]
            );
            let w = pinned.witness().expect("nonempty");
            prop_assert!(a.contains_point(&w));
            prop_assert_eq!(w[0], p[0]);
        }
    }

    #[test]
    fn projection_monotone(a in arb_relation(2), b in arb_relation(2)) {
        let u = a.union(&b);
        let pa = a.project_out(Var(1));
        let pu = u.project_out(Var(1));
        prop_assert!(pa.is_subset(&pu));
    }

    // ---- canonical forms --------------------------------------------

    #[test]
    fn cell_canonicalization_roundtrips(a in arb_relation(2)) {
        let space = CellSpace::for_relations(2, [&a]);
        let form = space.canonicalize(&a);
        let back = space.realize(&form);
        prop_assert!(back.equivalent(&a));
    }

    #[test]
    fn cell_equivalence_matches_semantic(a in arb_relation(1), b in arb_relation(1)) {
        let space = CellSpace::new(
            1,
            a.constants().into_iter().chain(b.constants()),
        );
        prop_assert_eq!(space.equivalent(&a, &b), a.equivalent(&b));
    }

    #[test]
    fn cell_complement_matches_syntactic(a in arb_relation(1)) {
        let space = CellSpace::for_relations(1, [&a]);
        prop_assert!(space.complement(&a).equivalent(&a.complement()));
    }

    // ---- simplification is semantics-preserving ---------------------

    #[test]
    fn simplify_preserves_semantics(a in arb_relation(2), p in arb_point(2)) {
        let s = a.simplify();
        prop_assert_eq!(s.contains_point(&p), a.contains_point(&p));
        prop_assert!(s.len() <= a.len().max(1));
    }

    // ---- automorphisms -----------------------------------------------

    #[test]
    fn automorphism_membership_transfers(a in arb_relation(2), p in arb_point(2), seed in 0u32..1000) {
        use dco_core::automorphism::rand_like::XorShift32;
        let consts: Vec<Rational> = a.constants().into_iter().collect();
        let mut rng = XorShift32::new(seed + 1);
        let f = Automorphism::random_over(&consts, &mut rng);
        let img = f.apply_relation(&a);
        prop_assert_eq!(
            a.contains_point(&p),
            img.contains_point(&f.apply_point(&p))
        );
    }

    #[test]
    fn automorphism_commutes_with_algebra(a in arb_relation(1), b in arb_relation(1), seed in 0u32..1000) {
        use dco_core::automorphism::rand_like::XorShift32;
        let consts: Vec<Rational> =
            a.constants().into_iter().chain(b.constants()).collect();
        let mut rng = XorShift32::new(seed + 1);
        let f = Automorphism::random_over(&consts, &mut rng);
        // π(A ∪ B) = π(A) ∪ π(B), and same for ∩ and complement
        prop_assert!(f
            .apply_relation(&a.union(&b))
            .equivalent(&f.apply_relation(&a).union(&f.apply_relation(&b))));
        prop_assert!(f
            .apply_relation(&a.intersect(&b))
            .equivalent(&f.apply_relation(&a).intersect(&f.apply_relation(&b))));
        prop_assert!(f
            .apply_relation(&a.complement())
            .equivalent(&f.apply_relation(&a).complement()));
    }

    // ---- interval fast path ------------------------------------------

    #[test]
    fn interval_set_mirrors_relation(a in arb_relation(1), p in arb_point(1)) {
        let ivs = IntervalSet::from_relation(&a);
        prop_assert_eq!(ivs.contains(&p[0]), a.contains_point(&p));
    }
}
