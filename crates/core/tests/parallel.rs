//! The parallel evaluation layer must be invisible: every operation run
//! under a forced multi-thread [`EvalConfig`] must return a *structurally
//! identical* DNF (`==`, not just equivalence) to the sequential run, and
//! subsumption-pruned construction must not change semantics.

use dco_core::prelude::*;
use proptest::prelude::*;

fn arb_term(arity: u32) -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..arity).prop_map(Term::var),
        (-6i64..6).prop_map(|c| Term::cst(rat(c as i128, 1))),
        (-12i64..12, 2i64..5).prop_map(|(n, d)| Term::cst(rat(n as i128, d as i128))),
    ]
}

fn arb_rawop() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        Just(RawOp::Lt),
        Just(RawOp::Le),
        Just(RawOp::Eq),
        Just(RawOp::Ne),
        Just(RawOp::Ge),
        Just(RawOp::Gt),
    ]
}

fn arb_raws(arity: u32) -> impl Strategy<Value = Vec<RawAtom>> {
    prop::collection::vec(
        (arb_term(arity), arb_rawop(), arb_term(arity))
            .prop_map(|(l, op, r)| RawAtom::new(l, op, r)),
        0..4,
    )
}

fn arb_relation(arity: u32) -> impl Strategy<Value = GeneralizedRelation> {
    prop::collection::vec(arb_raws(arity), 0..4).prop_map(move |tuples| {
        let mut rel = GeneralizedRelation::empty(arity);
        for raws in tuples {
            for t in GeneralizedTuple::from_raw(arity, raws) {
                rel.insert(t);
            }
        }
        rel
    })
}

/// Workers forced on with the fork threshold floored, so even the tiny
/// random instances take the parallel code paths.
fn forced() -> EvalConfig {
    EvalConfig {
        threads: 4,
        parallel_threshold: 1,
        ..EvalConfig::default()
    }
}

fn seq<T>(f: impl FnOnce() -> T) -> T {
    with_eval_config(EvalConfig::sequential(), f)
}

fn par<T>(f: impl FnOnce() -> T) -> T {
    with_eval_config(forced(), f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn intersect_parallel_identical(a in arb_relation(2), b in arb_relation(2)) {
        prop_assert_eq!(seq(|| a.intersect(&b)), par(|| a.intersect(&b)));
    }

    #[test]
    fn complement_parallel_identical(a in arb_relation(2)) {
        prop_assert_eq!(seq(|| a.complement()), par(|| a.complement()));
    }

    #[test]
    fn difference_parallel_identical(a in arb_relation(2), b in arb_relation(2)) {
        prop_assert_eq!(seq(|| a.difference(&b)), par(|| a.difference(&b)));
    }

    #[test]
    fn project_out_parallel_identical(a in arb_relation(2)) {
        prop_assert_eq!(seq(|| a.project_out(Var(1))), par(|| a.project_out(Var(1))));
    }

    #[test]
    fn simplify_parallel_identical(a in arb_relation(2)) {
        prop_assert_eq!(seq(|| a.simplify()), par(|| a.simplify()));
    }

    #[test]
    fn is_subset_parallel_identical(a in arb_relation(1), b in arb_relation(1)) {
        prop_assert_eq!(seq(|| a.is_subset(&b)), par(|| a.is_subset(&b)));
    }

    #[test]
    fn pruned_construction_preserves_semantics(raws in prop::collection::vec(arb_raws(2), 0..6)) {
        let tuples: Vec<GeneralizedTuple> = raws
            .into_iter()
            .flat_map(|r| GeneralizedTuple::from_raw(2, r))
            .collect();
        let pruned = GeneralizedRelation::from_tuples(2, tuples.iter().cloned());
        let unpruned = GeneralizedRelation::from_tuples_unpruned(2, tuples.iter().cloned());
        prop_assert!(pruned.len() <= unpruned.len());
        prop_assert!(pruned.equivalent(&unpruned));
    }
}
