//! Order automorphisms of `(Q, ≤)` and genericity checking.
//!
//! Definition 3.1 of the paper defines a query as a partial recursive mapping
//! **closed under automorphisms of Q**: if `π` is an order automorphism, then
//! `Q(π(D)) = π(Q(D))`. This is the dense-order analogue of the classical
//! genericity criterion of Chandra and Harel \[CH80\], and the paper notes it
//! coincides with invariance under *monotone homeomorphisms* of the rational
//! line.
//!
//! We realize a rich, easily-sampled family of automorphisms: piecewise
//! linear monotone bijections determined by finitely many anchor pairs
//! `(aᵢ ↦ bᵢ)` with both sequences strictly increasing, extended linearly
//! between anchors and by translation outside. Every such map is an order
//! automorphism of Q, and the family is rich enough to move any finite
//! constant set anywhere order-compatibly — which is exactly what the
//! genericity tests need.

use crate::rational::Rational;
use crate::relation::GeneralizedRelation;

use std::fmt;

/// A piecewise-linear order automorphism of Q.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Automorphism {
    /// Anchor pairs `(a, b)`: strictly increasing in both coordinates.
    anchors: Vec<(Rational, Rational)>,
}

/// Error constructing an automorphism from invalid anchors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutomorphismError(pub String);

impl fmt::Display for AutomorphismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid automorphism: {}", self.0)
    }
}

impl std::error::Error for AutomorphismError {}

impl Automorphism {
    /// The identity.
    pub fn identity() -> Automorphism {
        Automorphism {
            anchors: Vec::new(),
        }
    }

    /// Build from anchor pairs; both coordinate sequences must be strictly
    /// increasing once sorted by the first coordinate.
    pub fn from_anchors(
        mut anchors: Vec<(Rational, Rational)>,
    ) -> Result<Automorphism, AutomorphismError> {
        anchors.sort_by_key(|x| x.0);
        for w in anchors.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(AutomorphismError(format!(
                    "duplicate anchor source {}",
                    w[0].0
                )));
            }
            if w[0].1 >= w[1].1 {
                return Err(AutomorphismError(format!(
                    "anchor targets not increasing: {} ↦ {}, {} ↦ {}",
                    w[0].0, w[0].1, w[1].0, w[1].1
                )));
            }
        }
        Ok(Automorphism { anchors })
    }

    /// Translation `x ↦ x + d`.
    pub fn translation(d: Rational) -> Automorphism {
        // encoded as two anchors to keep a single representation
        Automorphism {
            anchors: vec![(Rational::ZERO, d), (Rational::ONE, Rational::ONE + d)],
        }
    }

    /// Scaling `x ↦ s·x` for `s > 0`.
    pub fn scaling(s: Rational) -> Automorphism {
        assert!(s.is_positive(), "scaling factor must be positive");
        Automorphism {
            anchors: vec![(Rational::ZERO, Rational::ZERO), (Rational::ONE, s)],
        }
    }

    /// Apply to a rational.
    pub fn apply(&self, x: &Rational) -> Rational {
        if self.anchors.is_empty() {
            return *x;
        }
        let first = &self.anchors[0];
        let last = &self.anchors[self.anchors.len() - 1];
        if *x <= first.0 {
            // translate with the leading segment's slope 1 offset
            return first.1 + (x - &first.0);
        }
        if *x >= last.0 {
            return last.1 + (x - &last.0);
        }
        // find the segment containing x
        let i = self.anchors.partition_point(|(a, _)| a < x);
        let (a1, b1) = &self.anchors[i - 1];
        let (a2, b2) = &self.anchors[i];
        if x == a2 {
            return *b2;
        }
        // linear interpolation: b1 + (x-a1) * (b2-b1)/(a2-a1)
        let slope = (b2 - b1) / (a2 - a1);
        b1 + &((x - a1) * slope)
    }

    /// The inverse automorphism.
    pub fn inverse(&self) -> Automorphism {
        Automorphism {
            anchors: self.anchors.iter().map(|(a, b)| (*b, *a)).collect(),
        }
    }

    /// Composition: `(self ∘ other)(x) = self(other(x))`.
    ///
    /// The composite is again piecewise linear; its breakpoints are the
    /// anchors of `other` together with the preimages (under `other`) of the
    /// anchors of `self`.
    pub fn compose(&self, other: &Automorphism) -> Automorphism {
        let inv = other.inverse();
        let mut sources: Vec<Rational> = other.anchors.iter().map(|(a, _)| *a).collect();
        sources.extend(self.anchors.iter().map(|(a, _)| inv.apply(a)));
        sources.sort();
        sources.dedup();
        let anchors = sources
            .into_iter()
            .map(|a| {
                let mid = other.apply(&a);
                (a, self.apply(&mid))
            })
            .collect();
        Automorphism { anchors }
    }

    /// Image of a generalized relation (maps every constant).
    pub fn apply_relation(&self, rel: &GeneralizedRelation) -> GeneralizedRelation {
        rel.map_consts(&|c| self.apply(c))
    }

    /// Image of a point.
    pub fn apply_point(&self, p: &[Rational]) -> Vec<Rational> {
        p.iter().map(|x| self.apply(x)).collect()
    }

    /// Like [`Automorphism::random_over`], but the automorphism **fixes**
    /// every constant in `fixed` pointwise. Needed to test genericity of
    /// queries that mention constants: such a query commutes only with
    /// automorphisms fixing its constants (C-genericity).
    pub fn random_over_fixing(
        consts: &[Rational],
        fixed: &[Rational],
        rng: &mut impl rand_like::RngLike,
    ) -> Automorphism {
        use std::collections::BTreeSet;
        let fixed_set: BTreeSet<Rational> = fixed.iter().copied().collect();
        let sorted: Vec<Rational> = consts
            .iter()
            .chain(fixed.iter())
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        if fixed_set.is_empty() {
            return Automorphism::random_over(&sorted, rng);
        }
        let n = sorted.len();
        let mut targets: Vec<Option<Rational>> = sorted
            .iter()
            .map(|c| {
                if fixed_set.contains(c) {
                    Some(*c)
                } else {
                    None
                }
            })
            .collect();
        let pinned: Vec<usize> = (0..n).filter(|&i| targets[i].is_some()).collect();
        let first = pinned[0];
        let last = *pinned.last().expect("nonempty");
        // Free prefix: walk left from the first pinned target.
        let mut cur = targets[first].expect("pinned");
        for i in (0..first).rev() {
            let jump = Rational::new(
                (rng.next_u32() % 7 + 1) as i128,
                (rng.next_u32() % 5 + 1) as i128,
            )
            .expect("valid jump");
            cur = cur - jump;
            targets[i] = Some(cur);
        }
        // Free suffix: walk right from the last pinned target.
        let mut cur = targets[last].expect("pinned");
        for t in targets.iter_mut().take(n).skip(last + 1) {
            let jump = Rational::new(
                (rng.next_u32() % 7 + 1) as i128,
                (rng.next_u32() % 5 + 1) as i128,
            )
            .expect("valid jump");
            cur = cur + jump;
            *t = Some(cur);
        }
        // Free runs between consecutive pinned indices: spread within the
        // open target interval, with a jitter below half the spacing.
        for w in pinned.windows(2) {
            let (p, q) = (w[0], w[1]);
            let k = q - p - 1;
            if k == 0 {
                continue;
            }
            let a = targets[p].expect("pinned");
            let b = targets[q].expect("pinned");
            let gap = b - a;
            let spacing = gap / Rational::from_int(k as i64 + 1);
            for (j, t) in targets.iter_mut().take(q).skip(p + 1).enumerate() {
                let base = a + (spacing * Rational::from_int(j as i64 + 1));
                let jitter =
                    spacing * Rational::new((rng.next_u32() % 50) as i128, 101).expect("valid");
                *t = Some(base + jitter);
            }
        }
        let anchors: Vec<(Rational, Rational)> = sorted
            .into_iter()
            .zip(targets.into_iter().map(|t| t.expect("all assigned")))
            .collect();
        Automorphism::from_anchors(anchors).expect("anchors are strictly increasing")
    }

    /// Sample a random automorphism that moves the given set of "interesting"
    /// constants to new rational positions while preserving their order —
    /// the workhorse of genericity property tests.
    pub fn random_over(consts: &[Rational], rng: &mut impl rand_like::RngLike) -> Automorphism {
        let mut sorted: Vec<Rational> = consts.to_vec();
        sorted.sort();
        sorted.dedup();
        // choose strictly increasing random images
        let mut targets = Vec::with_capacity(sorted.len());
        let mut prev: Option<Rational> = None;
        for _ in &sorted {
            let jump_num = (rng.next_u32() % 7 + 1) as i128;
            let jump_den = (rng.next_u32() % 5 + 1) as i128;
            let jump = Rational::new(jump_num, jump_den).expect("valid jump");
            let next = match &prev {
                None => {
                    let start = (rng.next_u32() % 21) as i64 - 10;
                    Rational::from_int(start)
                }
                Some(p) => p + &jump,
            };
            targets.push(next);
            prev = Some(next);
        }
        Automorphism::from_anchors(sorted.into_iter().zip(targets).collect())
            .expect("constructed anchors are strictly increasing")
    }
}

/// Minimal RNG abstraction so `dco-core` stays dependency-free in its public
/// API while tests and callers can plug `rand`.
pub mod rand_like {
    /// Anything that can produce `u32`s; implemented for a tiny xorshift and
    /// easily adapted to `rand::RngCore`.
    pub trait RngLike {
        /// Next pseudo-random u32.
        fn next_u32(&mut self) -> u32;
    }

    /// A deterministic xorshift32 — good enough for choosing test anchors.
    #[derive(Clone, Debug)]
    pub struct XorShift32 {
        state: u32,
    }

    impl XorShift32 {
        /// Seeded constructor; zero seeds are bumped.
        pub fn new(seed: u32) -> XorShift32 {
            XorShift32 {
                state: if seed == 0 { 0x9E3779B9 } else { seed },
            }
        }
    }

    impl RngLike for XorShift32 {
        fn next_u32(&mut self) -> u32 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            self.state = x;
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rand_like::{RngLike, XorShift32};
    use super::*;
    use crate::atom::{RawAtom, RawOp, Term};
    use crate::rational::rat;

    #[test]
    fn identity_fixes_everything() {
        let id = Automorphism::identity();
        for x in [rat(0, 1), rat(-5, 3), rat(7, 2)] {
            assert_eq!(id.apply(&x), x);
        }
    }

    #[test]
    fn translation_and_scaling() {
        let t = Automorphism::translation(rat(3, 1));
        assert_eq!(t.apply(&rat(1, 1)), rat(4, 1));
        assert_eq!(t.apply(&rat(-10, 1)), rat(-7, 1));
        let s = Automorphism::scaling(rat(2, 1));
        assert_eq!(s.apply(&rat(1, 2)), rat(1, 1));
        assert_eq!(s.apply(&rat(1, 1)), rat(2, 1));
        // outside anchor range the map continues with slope 1 — still an
        // automorphism, just not global scaling; monotonicity is what counts.
        assert!(s.apply(&rat(-3, 1)) < s.apply(&rat(-2, 1)));
    }

    #[test]
    fn piecewise_interpolation() {
        let f = Automorphism::from_anchors(vec![
            (rat(0, 1), rat(0, 1)),
            (rat(1, 1), rat(10, 1)),
            (rat(2, 1), rat(11, 1)),
        ])
        .unwrap();
        assert_eq!(f.apply(&rat(1, 2)), rat(5, 1));
        assert_eq!(f.apply(&rat(3, 2)), rat(21, 2));
        assert_eq!(f.apply(&rat(1, 1)), rat(10, 1));
    }

    #[test]
    fn monotone_everywhere() {
        let f = Automorphism::from_anchors(vec![
            (rat(-1, 1), rat(5, 1)),
            (rat(0, 1), rat(6, 1)),
            (rat(1, 2), rat(100, 1)),
        ])
        .unwrap();
        let probes = [
            rat(-10, 1),
            rat(-1, 1),
            rat(-1, 2),
            rat(0, 1),
            rat(1, 4),
            rat(1, 2),
            rat(5, 1),
        ];
        for w in probes.windows(2) {
            assert!(f.apply(&w[0]) < f.apply(&w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let f = Automorphism::from_anchors(vec![
            (rat(0, 1), rat(-3, 1)),
            (rat(1, 1), rat(0, 1)),
            (rat(3, 1), rat(1, 2)),
        ])
        .unwrap();
        let g = f.inverse();
        for x in [rat(0, 1), rat(1, 2), rat(2, 1), rat(-7, 1), rat(10, 1)] {
            assert_eq!(g.apply(&f.apply(&x)), x);
            assert_eq!(f.apply(&g.apply(&x)), x);
        }
    }

    #[test]
    fn compose_matches_pointwise() {
        let f = Automorphism::translation(rat(1, 1));
        let g = Automorphism::scaling(rat(2, 1));
        let fg = f.compose(&g);
        for x in [rat(0, 1), rat(1, 2), rat(-3, 1), rat(5, 1)] {
            assert_eq!(fg.apply(&x), f.apply(&g.apply(&x)));
        }
    }

    #[test]
    fn invalid_anchors_rejected() {
        assert!(
            Automorphism::from_anchors(vec![(rat(0, 1), rat(1, 1)), (rat(1, 1), rat(0, 1)),])
                .is_err()
        );
        assert!(
            Automorphism::from_anchors(vec![(rat(0, 1), rat(1, 1)), (rat(0, 1), rat(2, 1)),])
                .is_err()
        );
    }

    #[test]
    fn relation_image_membership_transfers() {
        // R = [0, 10]; π piecewise; x ∈ R ⟺ π(x) ∈ π(R)
        let rel = GeneralizedRelation::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        let f =
            Automorphism::from_anchors(vec![(rat(0, 1), rat(100, 1)), (rat(10, 1), rat(101, 1))])
                .unwrap();
        let img = f.apply_relation(&rel);
        for x in [rat(0, 1), rat(5, 1), rat(10, 1), rat(-1, 1), rat(11, 1)] {
            assert_eq!(rel.contains_point(&[x]), img.contains_point(&[f.apply(&x)]));
        }
    }

    #[test]
    fn random_over_fixing_pins_constants() {
        let mut rng = XorShift32::new(11);
        let consts = [rat(-1, 1), rat(0, 1), rat(3, 1), rat(7, 1), rat(10, 1)];
        let fixed = [rat(0, 1), rat(7, 1)];
        for _ in 0..20 {
            let f = Automorphism::random_over_fixing(&consts, &fixed, &mut rng);
            assert_eq!(f.apply(&rat(0, 1)), rat(0, 1));
            assert_eq!(f.apply(&rat(7, 1)), rat(7, 1));
            for w in consts.windows(2) {
                assert!(f.apply(&w[0]) < f.apply(&w[1]));
            }
            // free constants between fixed ones stay between them
            let img = f.apply(&rat(3, 1));
            assert!(rat(0, 1) < img && img < rat(7, 1));
        }
    }

    #[test]
    fn random_over_preserves_order() {
        let mut rng = XorShift32::new(42);
        let consts = [rat(-1, 1), rat(0, 1), rat(1, 2), rat(7, 1)];
        for _ in 0..20 {
            let f = Automorphism::random_over(&consts, &mut rng);
            for w in consts.windows(2) {
                assert!(f.apply(&w[0]) < f.apply(&w[1]));
            }
        }
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift32::new(7);
        let mut b = XorShift32::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }
}
