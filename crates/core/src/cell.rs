//! Order-type cells and canonical forms.
//!
//! Fix a finite set of constants `c₁ < … < c_m ⊂ Q` and an arity `k`. A
//! **cell** is a maximal subset of `Q^k` on which the complete order type of
//! `(x₁, …, x_k, c₁, …, c_m)` is constant: each coordinate either equals a
//! specific constant or lies in a specific open gap between consecutive
//! constants (including the two unbounded gaps), and coordinates sharing a
//! gap carry a fixed weak order among themselves.
//!
//! Cells are the dense-order analogue of the cylindrical cells of [Col75,
//! KY85] that Section 5 of the paper quantifies over. They give the engine
//! its canonical forms:
//!
//! * every relation definable with constants drawn from the cell space's
//!   constant set is a **finite union of cells** (it is closed under all
//!   automorphisms of Q fixing the constants pointwise);
//! * hence membership of a *single sample point* of a cell decides
//!   membership of the *whole* cell, giving an exact, cheap canonicalization
//!   `relation ↦ set of cell ids`;
//! * equivalence, inclusion and complement reduce to finite set operations
//!   on cell-id sets.
//!
//! The number of cells is `Σ` over assignments of coordinates to the `2m+1`
//! slots times ordered-set-partition counts per gap — exponential in `k` but
//! perfectly tractable for the arities query evaluation produces.

use crate::atom::{Atom, CompOp, Term};
use crate::rational::Rational;
use crate::relation::GeneralizedRelation;
use crate::tuple::GeneralizedTuple;

use std::collections::BTreeSet;
use std::fmt;

/// Where a coordinate sits relative to the constants: on the `i`-th constant,
/// or in the `i`-th open gap (gap `0` is `(-∞, c₁)`, gap `m` is `(c_m, ∞)`),
/// at a given rank among the coordinates sharing that gap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Position {
    /// Exactly the `i`-th constant (0-based into the sorted constant list).
    OnConst(usize),
    /// In open gap `i`, at rank `rank` (0-based, low to high) among the
    /// coordinates placed in that gap; equal coordinates share a rank.
    InGap {
        /// Which open gap (0 = below all constants, m = above all).
        gap: usize,
        /// Rank of this coordinate's equality-group within the gap.
        rank: usize,
    },
}

/// A single cell: one [`Position`] per coordinate.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Cell {
    positions: Vec<Position>,
}

impl Cell {
    /// Per-coordinate positions.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }
}

/// The space of cells for a fixed constant set and arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellSpace {
    constants: Vec<Rational>,
    arity: u32,
}

impl CellSpace {
    /// Build a cell space; constants are sorted and deduplicated.
    pub fn new(arity: u32, constants: impl IntoIterator<Item = Rational>) -> CellSpace {
        let set: BTreeSet<Rational> = constants.into_iter().collect();
        CellSpace {
            constants: set.into_iter().collect(),
            arity,
        }
    }

    /// Cell space covering everything a relation (or several) mentions.
    pub fn for_relations<'a>(
        arity: u32,
        rels: impl IntoIterator<Item = &'a GeneralizedRelation>,
    ) -> CellSpace {
        CellSpace::new(arity, rels.into_iter().flat_map(|r| r.constants()))
    }

    /// The sorted constant list.
    pub fn constants(&self) -> &[Rational] {
        &self.constants
    }

    /// The arity.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Number of open gaps (`m + 1`).
    pub fn gaps(&self) -> usize {
        self.constants.len() + 1
    }

    /// Enumerate every cell of the space.
    ///
    /// Enumeration order is deterministic: slot assignments in
    /// lexicographic order, then gap orderings.
    pub fn enumerate(&self) -> Vec<Cell> {
        let k = self.arity as usize;
        let m = self.constants.len();
        let nslots = 2 * m + 1; // even index = gap i/2; odd index = const (i-1)/2
        let mut cells = Vec::new();
        let mut slots = vec![0usize; k];
        loop {
            // Group variables by gap slot.
            let mut per_gap: Vec<Vec<usize>> = vec![Vec::new(); m + 1];
            for (var, &s) in slots.iter().enumerate() {
                if s % 2 == 0 {
                    per_gap[s / 2].push(var);
                }
            }
            // For each gap, enumerate ordered set partitions of its vars;
            // take the cartesian product across gaps.
            let partitions_per_gap: Vec<Vec<Vec<Vec<usize>>>> = per_gap
                .iter()
                .map(|vars| ordered_set_partitions(vars))
                .collect();
            let mut choice = vec![0usize; m + 1];
            loop {
                let mut positions = vec![Position::OnConst(0); k];
                for (var, &s) in slots.iter().enumerate() {
                    if s % 2 == 1 {
                        positions[var] = Position::OnConst((s - 1) / 2);
                    }
                }
                for gap in 0..=m {
                    let part = &partitions_per_gap[gap][choice[gap]];
                    for (rank, block) in part.iter().enumerate() {
                        for &var in block {
                            positions[var] = Position::InGap { gap, rank };
                        }
                    }
                }
                // Guard probe: one hit per cell split; cell decomposition
                // is the polynomial-but-large fallback path, so the tuple
                // budget also counts cells materialized here.
                crate::guard::probe_charge(crate::guard::ProbeSite::CellSplit, 1, 0);
                cells.push(Cell { positions });
                // advance choice
                let mut g = 0;
                loop {
                    if g > m {
                        break;
                    }
                    choice[g] += 1;
                    if choice[g] < partitions_per_gap[g].len() {
                        break;
                    }
                    choice[g] = 0;
                    g += 1;
                }
                if g > m {
                    break;
                }
            }
            // advance slots
            let mut i = 0;
            loop {
                if i >= k {
                    return cells;
                }
                slots[i] += 1;
                if slots[i] < nslots {
                    break;
                }
                slots[i] = 0;
                i += 1;
            }
            if k == 0 {
                return cells;
            }
        }
    }

    /// A sample point strictly inside the cell. Exactness of everything in
    /// this module rests on: a relation definable with constants in this
    /// space either contains all of a cell or none of it, so one sample
    /// decides the cell.
    pub fn sample(&self, cell: &Cell) -> Vec<Rational> {
        let m = self.constants.len();
        // For each gap, how many ranks are used?
        let mut ranks_used = vec![0usize; m + 1];
        for p in &cell.positions {
            if let Position::InGap { gap, rank } = p {
                ranks_used[*gap] = ranks_used[*gap].max(rank + 1);
            }
        }
        let gap_value = |gap: usize, rank: usize| -> Rational {
            let j = ranks_used[gap];
            debug_assert!(rank < j);
            if m == 0 {
                // single unbounded gap: use 1..=j
                return Rational::from_int(rank as i64 + 1);
            }
            if gap == 0 {
                // (-∞, c₁): c₁ - (j - rank)
                self.constants[0] - Rational::from_int((j - rank) as i64)
            } else if gap == m {
                // (c_m, ∞): c_m + rank + 1
                self.constants[m - 1] + Rational::from_int(rank as i64 + 1)
            } else {
                // (c_{gap-1}, c_{gap}) in 0-based: constants[gap-1], constants[gap]
                let lo = &self.constants[gap - 1];
                let hi = &self.constants[gap];
                let step = (hi - lo) / Rational::from_int(j as i64 + 1);
                lo + &(step * Rational::from_int(rank as i64 + 1))
            }
        };
        cell.positions
            .iter()
            .map(|p| match p {
                Position::OnConst(i) => self.constants[*i],
                Position::InGap { gap, rank } => gap_value(*gap, *rank),
            })
            .collect()
    }

    /// Express the cell as a generalized tuple (its defining constraints).
    pub fn to_tuple(&self, cell: &Cell) -> GeneralizedTuple {
        let m = self.constants.len();
        let mut atoms: Vec<Atom> = Vec::new();
        let mut push = |lhs: Term, op: CompOp, rhs: Term| {
            if let Some(v) = Atom::normalized(lhs, op, rhs) {
                atoms.extend(v);
            }
        };
        // Positions relative to constants.
        for (var, p) in cell.positions.iter().enumerate() {
            let x = Term::var(var as u32);
            match p {
                Position::OnConst(i) => {
                    push(x, CompOp::Eq, Term::Const(self.constants[*i]));
                }
                Position::InGap { gap, .. } => {
                    if *gap > 0 {
                        push(Term::Const(self.constants[gap - 1]), CompOp::Lt, x);
                    }
                    if *gap < m {
                        push(x, CompOp::Lt, Term::Const(self.constants[*gap]));
                    }
                }
            }
        }
        // Relative order within gaps.
        for i in 0..cell.positions.len() {
            for j in (i + 1)..cell.positions.len() {
                if let (
                    Position::InGap { gap: g1, rank: r1 },
                    Position::InGap { gap: g2, rank: r2 },
                ) = (&cell.positions[i], &cell.positions[j])
                {
                    if g1 == g2 {
                        let xi = Term::var(i as u32);
                        let xj = Term::var(j as u32);
                        match r1.cmp(r2) {
                            std::cmp::Ordering::Less => push(xi, CompOp::Lt, xj),
                            std::cmp::Ordering::Equal => push(xi, CompOp::Eq, xj),
                            std::cmp::Ordering::Greater => push(xj, CompOp::Lt, xi),
                        }
                    }
                }
            }
        }
        GeneralizedTuple::from_atoms(self.arity, atoms)
    }

    /// The cell containing a concrete point (positions and intra-gap ranks
    /// computed exactly).
    pub fn locate(&self, point: &[Rational]) -> Cell {
        assert_eq!(point.len(), self.arity as usize, "locate arity mismatch");
        let m = self.constants.len();
        // slot per coordinate: Ok(i) = on constant i, Err(g) = in gap g
        let coarse: Vec<Result<usize, usize>> = point
            .iter()
            .map(|x| {
                match self.constants.binary_search(x) {
                    Ok(i) => Ok(i),
                    Err(g) => Err(g), // number of constants below x = gap index
                }
            })
            .collect();
        // ranks within each gap: sort distinct values
        let mut positions = vec![Position::OnConst(0); point.len()];
        for g in 0..=m {
            let mut vals: Vec<Rational> = point
                .iter()
                .zip(&coarse)
                .filter(|(_, c)| **c == Err(g))
                .map(|(x, _)| *x)
                .collect();
            vals.sort();
            vals.dedup();
            for (i, c) in coarse.iter().enumerate() {
                if *c == Err(g) {
                    let rank = vals
                        .iter()
                        .position(|v| *v == point[i])
                        .expect("value present");
                    positions[i] = Position::InGap { gap: g, rank };
                }
            }
        }
        for (i, c) in coarse.iter().enumerate() {
            if let Ok(ci) = c {
                positions[i] = Position::OnConst(*ci);
            }
        }
        Cell { positions }
    }

    /// The index of a cell in [`CellSpace::enumerate`]'s deterministic
    /// order (linear scan — fine at experiment scales).
    pub fn index_of(&self, cell: &Cell) -> Option<usize> {
        self.enumerate().iter().position(|c| c == cell)
    }

    /// The canonical form of a relation over this space: the set of indices
    /// (into [`CellSpace::enumerate`]'s order) of cells contained in it.
    ///
    /// **Precondition**: every constant of `rel` is in this space (checked).
    pub fn canonicalize(&self, rel: &GeneralizedRelation) -> CanonicalForm {
        assert_eq!(rel.arity(), self.arity, "canonicalize arity mismatch");
        let consts: BTreeSet<Rational> = self.constants.iter().copied().collect();
        for c in rel.constants() {
            assert!(
                consts.contains(&c),
                "relation constant {} outside cell space",
                c
            );
        }
        let cells = self.enumerate();
        let mut members = BTreeSet::new();
        for (i, cell) in cells.iter().enumerate() {
            let p = self.sample(cell);
            if rel.contains_point(&p) {
                members.insert(i);
            }
        }
        CanonicalForm {
            members,
            total: cells.len(),
        }
    }

    /// Rebuild a relation from a canonical form (union of cell tuples).
    pub fn realize(&self, form: &CanonicalForm) -> GeneralizedRelation {
        let cells = self.enumerate();
        assert_eq!(
            cells.len(),
            form.total,
            "canonical form from a different space"
        );
        GeneralizedRelation::from_tuples(
            self.arity,
            form.members.iter().map(|&i| self.to_tuple(&cells[i])),
        )
    }

    /// Cell-based complement: exact for relations whose constants lie in
    /// this space, and often far cheaper than syntactic complement.
    pub fn complement(&self, rel: &GeneralizedRelation) -> GeneralizedRelation {
        let form = self.canonicalize(rel);
        let inverted = CanonicalForm {
            members: (0..form.total)
                .filter(|i| !form.members.contains(i))
                .collect(),
            total: form.total,
        };
        self.realize(&inverted)
    }

    /// Cell-based inclusion test (`a ⊆ b`); both relations' constants must
    /// lie in this space.
    pub fn is_subset(&self, a: &GeneralizedRelation, b: &GeneralizedRelation) -> bool {
        let fa = self.canonicalize(a);
        let fb = self.canonicalize(b);
        fa.members.is_subset(&fb.members)
    }

    /// Cell-based equivalence test.
    pub fn equivalent(&self, a: &GeneralizedRelation, b: &GeneralizedRelation) -> bool {
        self.canonicalize(a) == self.canonicalize(b)
    }
}

/// A relation's canonical form: which cells of a [`CellSpace`] it contains.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CanonicalForm {
    members: BTreeSet<usize>,
    total: usize,
}

impl CanonicalForm {
    /// Indices of member cells.
    pub fn members(&self) -> &BTreeSet<usize> {
        &self.members
    }

    /// Total number of cells in the space this form was computed over.
    pub fn total(&self) -> usize {
        self.total
    }
}

impl fmt::Display for CanonicalForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} cells", self.members.len(), self.total)
    }
}

/// The `k`-th Fubini number (ordered Bell number): the number of ordered
/// set partitions of a `k`-element set — 1, 1, 3, 13, 75, 541, 4683, … —
/// i.e. the number of weak orders the cell decomposition distinguishes on
/// `k` variables within one constant gap.
///
/// Computed with the recurrence `a(k) = Σᵢ C(k,i)·a(k−i)` under checked
/// arithmetic; `None` means the value overflows `usize` (so any cost
/// estimate built on it is certainly out of budget).
pub fn fubini(k: usize) -> Option<usize> {
    let mut a: Vec<usize> = Vec::with_capacity(k + 1);
    a.push(1);
    // Pascal-style binomial row, extended as n grows.
    for n in 1..=k {
        let mut total: usize = 0;
        let mut binom: usize = 1; // C(n, 0)
        for i in 1..=n {
            // C(n, i) = C(n, i-1) * (n - i + 1) / i  (exact at every step)
            binom = binom.checked_mul(n - i + 1)? / i;
            total = total.checked_add(binom.checked_mul(a[n - i])?)?;
        }
        a.push(total);
    }
    Some(a[k])
}

/// All ordered set partitions of `items` (sequences of disjoint nonempty
/// blocks covering the set; the sequence order is the value order low→high).
/// The count is the Fubini number: 1, 1, 3, 13, 75, … for 0, 1, 2, 3, 4
/// items.
pub fn ordered_set_partitions(items: &[usize]) -> Vec<Vec<Vec<usize>>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    // Recursive: choose the first block = any nonempty subset containing a
    // distinguished element? No — ordered partitions: choose first block as
    // any nonempty subset, recurse on the rest.
    let mut out = Vec::new();
    let n = items.len();
    // Enumerate nonempty subsets by bitmask; to avoid duplicates we take
    // every nonempty subset as the first block.
    for mask in 1u32..(1 << n) {
        let mut first = Vec::new();
        let mut rest = Vec::new();
        for (i, &it) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                first.push(it);
            } else {
                rest.push(it);
            }
        }
        for mut tail in ordered_set_partitions(&rest) {
            let mut part = vec![first.clone()];
            part.append(&mut tail);
            out.push(part);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{RawAtom, RawOp};
    use crate::rational::rat;

    fn v(i: u32) -> Term {
        Term::var(i)
    }

    fn c(n: i64) -> Term {
        Term::cst(rat(n as i128, 1))
    }

    fn raw(l: impl Into<Term>, op: RawOp, r: impl Into<Term>) -> RawAtom {
        RawAtom::new(l, op, r)
    }

    #[test]
    fn fubini_counts() {
        assert_eq!(ordered_set_partitions(&[]).len(), 1);
        assert_eq!(ordered_set_partitions(&[0]).len(), 1);
        assert_eq!(ordered_set_partitions(&[0, 1]).len(), 3);
        assert_eq!(ordered_set_partitions(&[0, 1, 2]).len(), 13);
        assert_eq!(ordered_set_partitions(&[0, 1, 2, 3]).len(), 75);
    }

    #[test]
    fn fubini_closed_form_matches_enumeration_and_extends() {
        for k in 0..=4usize {
            let items: Vec<usize> = (0..k).collect();
            assert_eq!(fubini(k), Some(ordered_set_partitions(&items).len()));
        }
        // Beyond the enumerable range: known ordered Bell numbers.
        assert_eq!(fubini(5), Some(541));
        assert_eq!(fubini(6), Some(4683));
        assert_eq!(fubini(7), Some(47293));
        // Far out the sequence overflows usize and must say so rather than
        // saturate silently.
        assert!(fubini(64).is_none());
    }

    #[test]
    fn unary_cell_count() {
        // m constants, arity 1: m point cells + (m+1) gap cells
        let space = CellSpace::new(1, vec![rat(0, 1), rat(5, 1)]);
        assert_eq!(space.enumerate().len(), 2 + 3);
    }

    #[test]
    fn binary_cell_count_no_constants() {
        // arity 2, no constants: cells = weak orders on 2 elements = 3
        let space = CellSpace::new(2, vec![]);
        assert_eq!(space.enumerate().len(), 3);
    }

    #[test]
    fn samples_lie_in_their_cells() {
        let space = CellSpace::new(2, vec![rat(0, 1), rat(1, 1), rat(7, 2)]);
        for cell in space.enumerate() {
            let t = space.to_tuple(&cell);
            let p = space.sample(&cell);
            assert!(
                t.contains_point(&p),
                "sample {:?} not in cell {:?}",
                p,
                cell
            );
        }
    }

    #[test]
    fn cells_partition_space() {
        // Every point belongs to exactly one cell.
        let space = CellSpace::new(2, vec![rat(0, 1), rat(2, 1)]);
        let cells = space.enumerate();
        let probes = vec![
            vec![rat(-1, 1), rat(-1, 1)],
            vec![rat(0, 1), rat(1, 1)],
            vec![rat(1, 1), rat(1, 1)],
            vec![rat(1, 2), rat(3, 2)],
            vec![rat(3, 1), rat(0, 1)],
            vec![rat(2, 1), rat(2, 1)],
        ];
        for p in probes {
            let n = cells
                .iter()
                .filter(|cell| space.to_tuple(cell).contains_point(&p))
                .count();
            assert_eq!(n, 1, "point {:?} in {} cells", p, n);
        }
    }

    #[test]
    fn canonicalize_interval() {
        let space = CellSpace::new(1, vec![rat(0, 1), rat(10, 1)]);
        let rel = GeneralizedRelation::from_raw(
            1,
            vec![raw(c(0), RawOp::Le, v(0)), raw(v(0), RawOp::Le, c(10))],
        );
        let form = space.canonicalize(&rel);
        // cells: (-∞,0), {0}, (0,10), {10}, (10,∞) — members: {0},(0,10),{10}
        assert_eq!(form.total(), 5);
        assert_eq!(form.members().len(), 3);
        // realize reproduces an equivalent relation
        let back = space.realize(&form);
        assert!(back.equivalent(&rel));
    }

    #[test]
    fn cell_complement_matches_syntactic() {
        let rel = GeneralizedRelation::from_raw(
            1,
            vec![raw(c(0), RawOp::Lt, v(0)), raw(v(0), RawOp::Le, c(3))],
        );
        let space = CellSpace::for_relations(1, [&rel]);
        let cc = space.complement(&rel);
        let sc = rel.complement();
        assert!(cc.equivalent(&sc));
    }

    #[test]
    fn cell_subset_and_equivalence() {
        let a = GeneralizedRelation::from_raw(
            1,
            vec![raw(c(0), RawOp::Le, v(0)), raw(v(0), RawOp::Le, c(5))],
        );
        let b = GeneralizedRelation::from_raw(
            1,
            vec![raw(c(0), RawOp::Le, v(0)), raw(v(0), RawOp::Le, c(10))],
        );
        let space = CellSpace::for_relations(1, [&a, &b]);
        assert!(space.is_subset(&a, &b));
        assert!(!space.is_subset(&b, &a));
        assert!(!space.equivalent(&a, &b));
        assert!(space.equivalent(&a, &a));
    }

    #[test]
    fn locate_agrees_with_sampling() {
        let space = CellSpace::new(2, vec![rat(0, 1), rat(2, 1)]);
        for cell in space.enumerate() {
            let p = space.sample(&cell);
            assert_eq!(space.locate(&p), cell, "locate(sample({cell:?}))");
        }
    }

    #[test]
    fn locate_specific_points() {
        let space = CellSpace::new(2, vec![rat(0, 1)]);
        // both coordinates in gap 1, x < y
        let c = space.locate(&[rat(1, 1), rat(2, 1)]);
        assert_eq!(
            c.positions(),
            &[
                Position::InGap { gap: 1, rank: 0 },
                Position::InGap { gap: 1, rank: 1 }
            ]
        );
        // equal coordinates share a rank
        let c = space.locate(&[rat(5, 1), rat(5, 1)]);
        assert_eq!(c.positions()[0], c.positions()[1]);
        // on the constant
        let c = space.locate(&[rat(0, 1), rat(-3, 1)]);
        assert_eq!(c.positions()[0], Position::OnConst(0));
        assert_eq!(c.positions()[1], Position::InGap { gap: 0, rank: 0 });
    }

    #[test]
    fn binary_diagonal_canonical() {
        let diag = GeneralizedRelation::from_raw(2, vec![raw(v(0), RawOp::Eq, v(1))]);
        let space = CellSpace::new(2, vec![rat(0, 1)]);
        let form = space.canonicalize(&diag);
        let back = space.realize(&form);
        assert!(back.equivalent(&diag));
    }
}
