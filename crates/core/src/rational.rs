//! Exact rational arithmetic over `i128`.
//!
//! The dense-order theory `Th(Q, <)` is the backbone of the paper; every
//! constant appearing in a constraint is a rational number. We implement a
//! small exact rational type rather than pulling in a bignum dependency:
//! dense-order quantifier elimination never *creates* new constants, and the
//! linear (FO+) layer only combines constants through Fourier–Motzkin steps,
//! so `i128` numerators/denominators are ample for every workload in the
//! experiment suite. All arithmetic is overflow-checked; an overflow is
//! reported as an error rather than wrapping silently.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) = 1`.
///
/// The normal form is maintained by every constructor, so structural equality
/// coincides with numeric equality and the derived `Hash` is consistent.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Error raised when rational arithmetic overflows `i128` or divides by zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArithmeticError(pub &'static str);

impl fmt::Display for ArithmeticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rational arithmetic error: {}", self.0)
    }
}

impl std::error::Error for ArithmeticError {}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct a rational from a numerator and denominator.
    ///
    /// Returns an error if `den == 0` or normalization overflows.
    pub fn new(num: i128, den: i128) -> Result<Rational, ArithmeticError> {
        if den == 0 {
            return Err(ArithmeticError("zero denominator"));
        }
        let g = gcd(num, den);
        let (mut n, mut d) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if d < 0 {
            n = n
                .checked_neg()
                .ok_or(ArithmeticError("negation overflow"))?;
            d = d
                .checked_neg()
                .ok_or(ArithmeticError("negation overflow"))?;
        }
        Ok(Rational { num: n, den: d })
    }

    /// Construct a rational from an integer.
    pub const fn from_int(n: i64) -> Rational {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// The numerator of the normal form (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator of the normal form (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Whether this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Whether this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Whether this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Checked addition.
    pub fn checked_add(&self, rhs: &Rational) -> Result<Rational, ArithmeticError> {
        // a/b + c/d = (a*d + c*b) / (b*d); reduce via gcd of denominators first
        // to keep intermediates small (standard trick, see Knuth TAOCP 4.5.1).
        let g = gcd(self.den, rhs.den);
        let bd = self.den / g;
        let dd = rhs.den / g;
        let n1 = self
            .num
            .checked_mul(dd)
            .ok_or(ArithmeticError("add overflow"))?;
        let n2 = rhs
            .num
            .checked_mul(bd)
            .ok_or(ArithmeticError("add overflow"))?;
        let num = n1.checked_add(n2).ok_or(ArithmeticError("add overflow"))?;
        let den = self
            .den
            .checked_mul(dd)
            .ok_or(ArithmeticError("add overflow"))?;
        Rational::new(num, den)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, rhs: &Rational) -> Result<Rational, ArithmeticError> {
        self.checked_add(&rhs.checked_neg()?)
    }

    /// Checked multiplication.
    pub fn checked_mul(&self, rhs: &Rational) -> Result<Rational, ArithmeticError> {
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .ok_or(ArithmeticError("mul overflow"))?;
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .ok_or(ArithmeticError("mul overflow"))?;
        Rational::new(num, den)
    }

    /// Checked division.
    pub fn checked_div(&self, rhs: &Rational) -> Result<Rational, ArithmeticError> {
        if rhs.is_zero() {
            return Err(ArithmeticError("division by zero"));
        }
        self.checked_mul(
            &Rational {
                num: rhs.den,
                den: rhs.num,
            }
            .canonicalized(),
        )
    }

    /// Checked negation.
    pub fn checked_neg(&self) -> Result<Rational, ArithmeticError> {
        Ok(Rational {
            num: self
                .num
                .checked_neg()
                .ok_or(ArithmeticError("negation overflow"))?,
            den: self.den,
        })
    }

    fn canonicalized(self) -> Rational {
        if self.den < 0 {
            Rational {
                num: -self.num,
                den: -self.den,
            }
        } else {
            self
        }
    }

    /// The exact midpoint of `self` and `other`; exists for any pair by
    /// density of Q. This is how sample points inside open cells are chosen.
    pub fn midpoint(&self, other: &Rational) -> Result<Rational, ArithmeticError> {
        self.checked_add(other)?.checked_div(&Rational::from_int(2))
    }

    /// The reciprocal, failing on zero.
    pub fn recip(&self) -> Result<Rational, ArithmeticError> {
        if self.is_zero() {
            return Err(ArithmeticError("reciprocal of zero"));
        }
        Ok(Rational {
            num: self.den,
            den: self.num,
        }
        .canonicalized())
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Approximate value as `f64` (for reporting only; never used in logic).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Full 256-bit product of two `u128`s as `(hi, lo)` limbs, via four 64-bit
/// partial products. Cannot overflow.
fn wide_mul_u128(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (mid << 64) | (ll & MASK);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Compare a/b vs c/d <=> a*d vs c*b (denominators positive).
        if let (Some(l), Some(r)) = (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            return l.cmp(&r);
        }
        // A cross product overflowed i128. Signs decide first; with equal
        // signs, compare magnitudes |a|*d vs |c|*b as exact 256-bit products
        // (flipped for negatives). Exactness matters: a lossy fallback here
        // would make Ord non-total for near-equal large rationals, and every
        // bound comparison in QE trusts this ordering.
        let ls = self.num.signum();
        let rs = other.num.signum();
        if ls != rs {
            return ls.cmp(&rs);
        }
        let l = wide_mul_u128(self.num.unsigned_abs(), other.den as u128);
        let r = wide_mul_u128(other.num.unsigned_abs(), self.den as u128);
        if ls >= 0 {
            l.cmp(&r)
        } else {
            r.cmp(&l)
        }
    }
}

// The operator impls route their failure path through the guard layer:
// inside a guarded evaluation an overflow surfaces as a typed
// `EvalError::Overflow` at the nearest `try_*` boundary; unguarded code
// panics exactly as the seed did.
macro_rules! panicking_op {
    ($trait_:ident, $method:ident, $checked:ident, $ctx:literal) => {
        impl $trait_ for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                match self.$checked(&rhs) {
                    Ok(v) => v,
                    Err(_) => crate::guard::raise_overflow($ctx),
                }
            }
        }
        impl<'a> $trait_<&'a Rational> for &'a Rational {
            type Output = Rational;
            fn $method(self, rhs: &'a Rational) -> Rational {
                match self.$checked(rhs) {
                    Ok(v) => v,
                    Err(_) => crate::guard::raise_overflow($ctx),
                }
            }
        }
    };
}

panicking_op!(Add, add, checked_add, "rational add");
panicking_op!(Sub, sub, checked_sub, "rational sub");
panicking_op!(Mul, mul, checked_mul, "rational mul");
panicking_op!(Div, div, checked_div, "rational div");

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        match self.checked_neg() {
            Ok(v) => v,
            Err(_) => crate::guard::raise_overflow("rational neg"),
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Rational {
        Rational::from_int(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Rational {
        Rational::from_int(n as i64)
    }
}

impl TryFrom<(i128, i128)> for Rational {
    type Error = ArithmeticError;
    fn try_from(v: (i128, i128)) -> Result<Rational, ArithmeticError> {
        Rational::new(v.0, v.1)
    }
}

impl From<Rational> for (i128, i128) {
    fn from(r: Rational) -> (i128, i128) {
        (r.num, r.den)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

/// Parse error for the textual rational syntax `[-]digits[/digits]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError(pub String);

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;
    fn from_str(s: &str) -> Result<Rational, ParseRationalError> {
        let bad = || ParseRationalError(s.to_string());
        if let Some((n, d)) = s.split_once('/') {
            let n: i128 = n.trim().parse().map_err(|_| bad())?;
            let d: i128 = d.trim().parse().map_err(|_| bad())?;
            Rational::new(n, d).map_err(|_| bad())
        } else if let Some((int, frac)) = s.split_once('.') {
            // Decimal literal, e.g. "1.25".
            let neg = int.trim_start().starts_with('-');
            let int: i128 = int.trim().parse().map_err(|_| bad())?;
            let frac = frac.trim();
            if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            let scale = 10i128.checked_pow(frac.len() as u32).ok_or_else(bad)?;
            let frac_num: i128 = frac.parse().map_err(|_| bad())?;
            let whole = int.checked_mul(scale).ok_or_else(bad)?;
            let num = if neg {
                whole.checked_sub(frac_num).ok_or_else(bad)?
            } else {
                whole.checked_add(frac_num).ok_or_else(bad)?
            };
            Rational::new(num, scale).map_err(|_| bad())
        } else {
            let n: i128 = s.trim().parse().map_err(|_| bad())?;
            Ok(Rational { num: n, den: 1 })
        }
    }
}

/// Convenience constructor used throughout tests and examples: `rat(1, 2)`.
pub fn rat(num: i128, den: i128) -> Rational {
    Rational::new(num, den).expect("invalid rational")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_form() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 5), Rational::ZERO);
        assert_eq!(rat(0, -5).denom(), 1);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert!(Rational::new(1, 0).is_err());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(1, 2) / rat(1, 4), rat(2, 1));
        assert_eq!(-rat(1, 2), rat(-1, 2));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 1) > rat(13, 2));
        let mut v = vec![rat(3, 1), rat(1, 2), rat(-5, 3), rat(0, 1)];
        v.sort();
        assert_eq!(v, vec![rat(-5, 3), rat(0, 1), rat(1, 2), rat(3, 1)]);
    }

    #[test]
    fn midpoint_is_strictly_between() {
        let m = rat(1, 3).midpoint(&rat(1, 2)).unwrap();
        assert!(rat(1, 3) < m && m < rat(1, 2));
        assert_eq!(m, rat(5, 12));
    }

    #[test]
    fn parse() {
        assert_eq!("3".parse::<Rational>().unwrap(), rat(3, 1));
        assert_eq!("-3/6".parse::<Rational>().unwrap(), rat(-1, 2));
        assert_eq!("1.25".parse::<Rational>().unwrap(), rat(5, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), rat(-1, 2));
        assert!("x".parse::<Rational>().is_err());
        assert!("1/0".parse::<Rational>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for r in [rat(1, 2), rat(-7, 3), rat(4, 1), Rational::ZERO] {
            let s = r.to_string();
            assert_eq!(s.parse::<Rational>().unwrap(), r);
        }
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(rat(1, 2).checked_div(&Rational::ZERO).is_err());
        assert!(Rational::ZERO.recip().is_err());
    }

    #[test]
    fn overflow_detected() {
        let big = Rational::new(i128::MAX, 1).unwrap();
        assert!(big.checked_add(&Rational::ONE).is_err());
        assert!(big.checked_mul(&rat(2, 1)).is_err());
    }

    #[test]
    fn ordering_exact_when_cross_products_overflow() {
        // Regression: a = (2^96+1)/2^96 and b = 2^96/(2^96-1) differ by
        // 1/(2^96 (2^96-1)); their cross products 2^192-1 vs 2^192 both
        // overflow i128, and the old f64 fallback declared them Equal.
        let p = 1i128 << 96;
        let a = Rational::new(p + 1, p).unwrap();
        let b = Rational::new(p, p - 1).unwrap();
        assert_eq!(a.cmp(&b), Ordering::Less);
        assert_eq!(b.cmp(&a), Ordering::Greater);
        assert_ne!(a, b);

        // Symmetric negative case, flipped ordering.
        let na = Rational::new(-(p + 1), p).unwrap();
        let nb = Rational::new(-p, p - 1).unwrap();
        assert_eq!(na.cmp(&nb), Ordering::Greater);
        assert_eq!(nb.cmp(&na), Ordering::Less);

        // Mixed signs decide by sign even when magnitudes overflow.
        assert_eq!(na.cmp(&b), Ordering::Less);
        assert_eq!(b.cmp(&na), Ordering::Greater);

        // Equality through the wide path: a == a with forced overflow.
        let a2 = Rational::new(p + 1, p).unwrap();
        assert_eq!(a.cmp(&a2), Ordering::Equal);
    }

    #[test]
    fn wide_mul_matches_narrow_products() {
        for &(x, y) in &[
            (0u128, 0u128),
            (1, u128::MAX),
            (u128::MAX, u128::MAX),
            (1u128 << 96, (1u128 << 96) - 1),
            (12345678901234567890, 98765432109876543210),
        ] {
            let (hi, lo) = wide_mul_u128(x, y);
            // Verify against the identity x*y mod 2^128 and a widening
            // check on the high limb via division.
            assert_eq!(lo, x.wrapping_mul(y));
            if x != 0 {
                let q = ((hi as f64) * 2f64.powi(128) + lo as f64) / x as f64;
                let rel = (q - y as f64).abs() / (y.max(1) as f64);
                assert!(rel < 1e-9, "hi limb inconsistent for {x}*{y}");
            }
        }
    }
}
