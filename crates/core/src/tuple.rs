//! Generalized tuples: conjunctions of dense-order constraints.
//!
//! A *k-ary generalized tuple* [KKR90, §2 of the paper] is a conjunction of
//! atomic constraints over variables `x0 … x(k-1)`; it finitely represents the
//! (typically infinite) set of points of `Q^k` satisfying it. This module
//! provides the decision procedures the whole engine rests on:
//!
//! * **satisfiability** of a conjunction, by building the order graph over
//!   term equivalence classes and rejecting exactly when a strongly connected
//!   component contains a strict edge (the classic dense-order closure
//!   argument — density and lack of endpoints make this complete);
//! * **witness construction** (a concrete rational point satisfying the
//!   tuple), used for sampling-based canonicalization;
//! * **single-variable quantifier elimination** (`∃x`), the dense-order QE
//!   step of \[CK73\]: substitute equalities, then combine every lower bound
//!   with every upper bound;
//! * **entailment and subsumption**, used to simplify relations.

use crate::atom::{Atom, CompOp, RawAtom, Term, Var};
use crate::intern::atom_fingerprint;
use crate::rational::Rational;
use crate::sat::{SatState, VarBox};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A conjunction of normalized atoms over columns `0..arity`.
///
/// The empty conjunction represents all of `Q^arity`. Atoms are kept sorted
/// and deduplicated; the tuple is *not* guaranteed satisfiable — call
/// [`GeneralizedTuple::is_satisfiable`] — but trivially-decidable atoms never
/// appear (they are resolved during normalization).
///
/// Alongside the atoms the tuple carries derived state maintained
/// incrementally by [`GeneralizedTuple::push`]:
///
/// * a 64-bit *fingerprint* — an order-independent combination of per-atom
///   hashes. `Hash` writes only the fingerprint (O(1) instead of rehashing
///   the atom vector) and `PartialEq` fast-paths on it; a fingerprint
///   collision falls through to the full structural compare, so verdicts
///   are never wrong;
/// * a [`SatState`] — the order-graph closure extended atom by atom, giving
///   O(1) satisfiability and per-variable bounding boxes (see
///   [`crate::sat`]). Graph tracking follows
///   [`crate::par::EvalConfig::incremental_sat`] at construction time; with
///   it off, satisfiability uses the memoized batch solver of the seed
///   kernel.
///
/// Equality, ordering and hashing are functions of `(arity, atoms)` only —
/// the derived state never influences comparisons.
#[derive(Clone)]
pub struct GeneralizedTuple {
    arity: u32,
    atoms: Vec<Atom>,
    fp: u64,
    sat: SatState,
}

impl PartialEq for GeneralizedTuple {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.fp == other.fp && self.atoms == other.atoms
    }
}

impl Eq for GeneralizedTuple {}

impl PartialOrd for GeneralizedTuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GeneralizedTuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arity, &self.atoms).cmp(&(other.arity, &other.atoms))
    }
}

impl std::hash::Hash for GeneralizedTuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint());
    }
}

impl GeneralizedTuple {
    /// The tuple with no constraints: all of `Q^arity`.
    pub fn top(arity: u32) -> GeneralizedTuple {
        GeneralizedTuple {
            arity,
            atoms: Vec::new(),
            fp: 0,
            sat: SatState::new(arity, crate::par::eval_config().incremental_sat),
        }
    }

    /// Build from normalized atoms. Atoms mentioning columns `>= arity` are
    /// a caller bug and panic.
    pub fn from_atoms(arity: u32, atoms: impl IntoIterator<Item = Atom>) -> GeneralizedTuple {
        let mut t = GeneralizedTuple::top(arity);
        for a in atoms {
            t.push(a);
        }
        t
    }

    /// Build a tuple from raw atoms, returning one tuple per `≠`-split
    /// alternative (the conjunction of raw atoms is equivalent to the
    /// disjunction of returned tuples). Unsatisfiable-by-normalization
    /// alternatives are dropped; the result may be empty (false).
    pub fn from_raw(arity: u32, raws: impl IntoIterator<Item = RawAtom>) -> Vec<GeneralizedTuple> {
        let mut alts = vec![GeneralizedTuple::top(arity)];
        for raw in raws {
            let Some(norm) = raw.normalize() else {
                return Vec::new();
            };
            let mut next = Vec::with_capacity(alts.len() * norm.len());
            for t in &alts {
                for alt in &norm {
                    let mut t2 = t.clone();
                    for a in alt {
                        t2.push(*a);
                    }
                    next.push(t2);
                }
            }
            alts = next;
        }
        alts.retain(|t| t.is_satisfiable());
        alts
    }

    /// A tuple pinning each column to the given constants — the classical
    /// relational tuple `(a, b, …)` as the paper embeds it (`x = a ∧ y = b`).
    pub fn point(values: &[Rational]) -> GeneralizedTuple {
        let atoms = values.iter().enumerate().filter_map(|(i, v)| {
            Atom::normalized(Term::var(i as u32), CompOp::Eq, Term::Const(*v))
                .and_then(|v| v.into_iter().next())
        });
        GeneralizedTuple::from_atoms(values.len() as u32, atoms)
    }

    /// Number of columns.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// The precomputed fingerprint: equal tuples (same arity and atoms)
    /// always have equal fingerprints; distinct tuples collide with
    /// probability ~2⁻⁶⁴. Stable across processes.
    pub fn fingerprint(&self) -> u64 {
        crate::intern::fold(self.fp, self.arity as u64)
    }

    /// The incremental satisfiability verdict carried by the tuple's
    /// [`SatState`], or `None` when the tuple was built without graph
    /// tracking (then [`GeneralizedTuple::is_satisfiable`] uses the batch
    /// solver).
    pub fn sat_verdict(&self) -> Option<bool> {
        self.sat.verdict()
    }

    /// Per-variable interval bounding box (over-approximate, from direct
    /// variable-vs-constant atoms). Empty slice when no such atom exists.
    pub fn bounding_box(&self) -> &[VarBox] {
        self.sat.boxes()
    }

    /// Whether the bounding boxes prove `self ∧ other` empty — the cheap
    /// pre-filter used by `intersect`/`difference`/`select` and the Datalog
    /// delta join to skip pairs before any conjoin.
    pub fn box_disjoint(&self, other: &GeneralizedTuple) -> bool {
        self.sat.box_disjoint(&other.sat)
    }

    /// `(strict, weak)` order-obligation counts of the conjunction. When
    /// the tuple carries a tracked [`SatState`] these are the order-graph
    /// edge counts (equalities as two weak edges, constant chaining
    /// included); otherwise they are derived from the atom list directly,
    /// so the measure is available under every evaluation config.
    pub fn order_edge_counts(&self) -> (usize, usize) {
        if self.sat.verdict().is_some() {
            return (self.sat.strict_edge_count(), self.sat.weak_edge_count());
        }
        let mut strict = 0;
        let mut weak = 0;
        for a in &self.atoms {
            match a.op() {
                CompOp::Lt => strict += 1,
                CompOp::Le => weak += 1,
                CompOp::Eq => weak += 2,
            }
        }
        (strict, weak)
    }

    /// Whether the conjunction is empty (represents all of `Q^arity`).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Insert an atom, keeping the sorted/deduplicated invariant.
    pub fn push(&mut self, atom: Atom) {
        for v in atom.vars() {
            assert!(
                v.0 < self.arity,
                "atom mentions column {} outside arity {}",
                v.0,
                self.arity
            );
        }
        match self.atoms.binary_search(&atom) {
            Ok(_) => {}
            Err(pos) => {
                self.atoms.insert(pos, atom);
                // The fingerprint combines per-atom hashes with a wrapping
                // sum — commutative, so it is insertion-order independent
                // and maintainable in O(1) here.
                self.fp = self.fp.wrapping_add(atom_fingerprint(&atom));
                self.sat.assert_atom(&atom);
            }
        }
    }

    /// Conjoin two tuples of the same arity.
    pub fn conjoin(&self, other: &GeneralizedTuple) -> GeneralizedTuple {
        assert_eq!(self.arity, other.arity, "conjoin arity mismatch");
        let mut t = self.clone();
        for a in &other.atoms {
            t.push(*a);
        }
        t
    }

    /// Evaluate membership of a point.
    pub fn contains_point(&self, point: &[Rational]) -> bool {
        assert_eq!(point.len(), self.arity as usize, "point arity mismatch");
        self.atoms.iter().all(|a| a.eval(point))
    }

    /// If the tuple pins every column to a constant (a classical tuple
    /// `x₀ = a₀ ∧ … ∧ x_{k-1} = a_{k-1}`), return the point. Conservative:
    /// any non-equality atom or variable-variable equality yields `None`
    /// even if the denotation happens to be a single point.
    pub fn as_point(&self) -> Option<Vec<Rational>> {
        let mut vals: Vec<Option<Rational>> = vec![None; self.arity as usize];
        for a in &self.atoms {
            if a.op() != CompOp::Eq {
                return None;
            }
            let (v, c) = match (a.lhs(), a.rhs()) {
                (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => (v, c),
                _ => return None,
            };
            match &vals[v.index()] {
                Some(prev) if *prev != c => return None, // unsatisfiable pin
                _ => vals[v.index()] = Some(c),
            }
        }
        vals.into_iter().collect()
    }

    /// All rational constants mentioned.
    pub fn constants(&self) -> BTreeSet<Rational> {
        self.atoms.iter().flat_map(|a| a.consts()).collect()
    }

    /// All columns actually constrained.
    pub fn mentioned_vars(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// Decide satisfiability over `(Q, <)`.
    ///
    /// Verdicts are memoized in the process-wide cache
    /// ([`crate::cache::tuple_sat_cache`]): atoms are kept in canonical
    /// sorted form, so structurally identical conjunctions produced by
    /// different operations share a single order-graph decision. Tuples
    /// with fewer than two atoms skip the cache — normalization already
    /// resolved trivially-decidable atoms, so they are always satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        if self.atoms.len() < 2 {
            return true;
        }
        // Incremental fast path: a tracked SatState already carries the
        // verdict — no graph rebuild, no cache probe.
        if let Some(verdict) = self.sat.verdict() {
            return verdict;
        }
        crate::cache::tuple_sat_cache().get_or_insert_with(self, || self.is_satisfiable_uncached())
    }

    /// Decide satisfiability without consulting the memo cache (used by the
    /// cache itself on a miss, and by benchmarks measuring the raw solver).
    pub fn is_satisfiable_uncached(&self) -> bool {
        OrderGraph::build(self)
            .map(|g| g.consistent())
            .unwrap_or(false)
    }

    /// Produce a rational point satisfying the tuple, if one exists.
    ///
    /// The witness is constructed from the topological structure of the order
    /// graph: equivalence classes are linearized respecting all edges, classes
    /// containing a constant take that value, and the remaining classes are
    /// interpolated strictly between their rational neighbours (possible by
    /// density; unbounded ends use ±1 offsets — no endpoints).
    pub fn witness(&self) -> Option<Vec<Rational>> {
        let g = OrderGraph::build(self)?;
        g.witness(self.arity)
    }

    /// Substitute `v := t` and renormalize. Returns `None` if the result is
    /// trivially unsatisfiable.
    pub fn substitute(&self, v: Var, t: Term) -> Option<GeneralizedTuple> {
        let mut out = GeneralizedTuple::top(self.arity);
        for a in &self.atoms {
            match a.substitute(v, t) {
                None => return None,
                Some(atoms) => {
                    for a in atoms {
                        out.push(a);
                    }
                }
            }
        }
        Some(out)
    }

    /// Dense-order quantifier elimination of a single variable: returns a
    /// tuple over the *same* arity whose constraints no longer mention `v`
    /// and which is equivalent to `∃v. self` (on the remaining columns).
    ///
    /// Returns `None` when elimination discovers unsatisfiability.
    pub fn eliminate(&self, v: Var) -> Option<GeneralizedTuple> {
        // Guard probe: one hit per single-variable QE step.
        crate::guard::probe(crate::guard::ProbeSite::QuantifierElim);
        // Step 1: if some equality pins v to another term, substitute it.
        for a in &self.atoms {
            if a.op() == CompOp::Eq {
                if a.lhs() == Term::Var(v) && a.rhs() != Term::Var(v) {
                    return self.substitute(v, a.rhs());
                }
                if a.rhs() == Term::Var(v) && a.lhs() != Term::Var(v) {
                    return self.substitute(v, a.lhs());
                }
            }
        }
        // Step 2: collect bounds. lower: t (<|<=) v ; upper: v (<|<=) t.
        let mut rest = GeneralizedTuple::top(self.arity);
        let mut lowers: Vec<(Term, CompOp)> = Vec::new();
        let mut uppers: Vec<(Term, CompOp)> = Vec::new();
        for a in &self.atoms {
            if !a.mentions(v) {
                rest.push(*a);
            } else if a.rhs() == Term::Var(v) {
                lowers.push((a.lhs(), a.op()));
            } else {
                uppers.push((a.rhs(), a.op()));
            }
        }
        // Step 3: combine each lower with each upper. Density and absence of
        // endpoints make this sound and complete: the interval (max lower,
        // min upper) is nonempty iff all pairwise bound comparisons hold.
        for (l, lop) in &lowers {
            for (u, uop) in &uppers {
                let op = if lop.is_strict() || uop.is_strict() {
                    CompOp::Lt
                } else {
                    CompOp::Le
                };
                match Atom::normalized(*l, op, *u) {
                    None => return None,
                    Some(atoms) => {
                        for a in atoms {
                            rest.push(a);
                        }
                    }
                }
            }
        }
        Some(rest)
    }

    /// Apply a column renaming (must map into `new_arity`).
    pub fn rename(&self, new_arity: u32, f: impl Fn(Var) -> Var) -> GeneralizedTuple {
        GeneralizedTuple::from_atoms(new_arity, self.atoms.iter().map(|a| a.rename(&f)))
    }

    /// Widen the tuple to a larger arity (new columns unconstrained).
    pub fn widen(&self, new_arity: u32) -> GeneralizedTuple {
        assert!(new_arity >= self.arity, "widen must not shrink");
        // Node ids in the SatState depend on the arity, so the derived
        // state is rebuilt by replaying the atoms.
        GeneralizedTuple::from_atoms(new_arity, self.atoms.iter().copied())
    }

    /// Does this tuple entail the given atom (`self ⊨ atom`)?
    ///
    /// Decided by refutation: `self ∧ ¬atom` unsatisfiable. `¬atom` may be a
    /// disjunction (for `=`), in which case all alternatives must be
    /// unsatisfiable.
    pub fn entails(&self, atom: &Atom) -> bool {
        atom.negate().into_iter().all(|alt| {
            let mut t = self.clone();
            for a in alt {
                t.push(a);
            }
            !t.is_satisfiable()
        })
    }

    /// Syntactic subsumption fast path: if every atom of `self` appears
    /// literally in `other`, then `other` is `self` plus extra constraints,
    /// so `other ⊆ self`. Both atom vectors are sorted, so this is a single
    /// linear merge — no satisfiability calls. Sound but incomplete:
    /// `false` only means the cheap check failed, not that subsumption
    /// fails.
    pub fn subsumes_syntactic(&self, other: &GeneralizedTuple) -> bool {
        debug_assert_eq!(self.arity, other.arity);
        if self.atoms.len() > other.atoms.len() {
            return false;
        }
        // Fingerprint fast path: with equal atom counts, subset means
        // equal, which the fingerprints decide in O(1) (bar collisions,
        // which the structural compare then resolves).
        if self.atoms.len() == other.atoms.len() {
            return self.fp == other.fp && self.atoms == other.atoms;
        }
        let mut it = other.atoms.iter();
        'outer: for a in &self.atoms {
            for b in it.by_ref() {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Does this tuple's point set include the other's (`other ⊆ self`)?
    ///
    /// Tries the syntactic atom-subset check first; only on failure falls
    /// back to the semantic entailment test (one refutation per atom).
    pub fn subsumes(&self, other: &GeneralizedTuple) -> bool {
        assert_eq!(self.arity, other.arity);
        self.subsumes_syntactic(other) || self.atoms.iter().all(|a| other.entails(a))
    }

    /// Remove atoms entailed by the rest of the conjunction (minimal-ish
    /// form; greedy, so not guaranteed globally minimum but stable).
    pub fn simplify(&self) -> GeneralizedTuple {
        let mut atoms = self.atoms.clone();
        let mut i = 0;
        while i < atoms.len() {
            let a = atoms[i];
            let rest = GeneralizedTuple::from_atoms(
                self.arity,
                atoms
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, x)| *x),
            );
            if rest.entails(&a) {
                atoms.remove(i);
            } else {
                i += 1;
            }
        }
        GeneralizedTuple::from_atoms(self.arity, atoms)
    }

    /// Map all constants through a strictly monotone function (an
    /// order-automorphism of `Q`); the resulting tuple represents the image
    /// of the point set under the automorphism.
    pub fn map_consts(&self, f: &impl Fn(&Rational) -> Rational) -> GeneralizedTuple {
        GeneralizedTuple::from_atoms(self.arity, self.atoms.iter().map(|a| a.map_consts(f)))
    }
}

impl fmt::Debug for GeneralizedTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "⊤/{}", self.arity);
        }
        let parts: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join(" & "))
    }
}

impl fmt::Display for GeneralizedTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The order graph of a conjunction: nodes are equivalence classes of terms
/// (under the equality atoms), edges are `<` (strict) and `≤` (weak)
/// obligations, including the built-in order on the mentioned constants.
/// Result of the SCC pass: `(scc_of_root, topo_order_of_sccs, scc_pin)`.
type SccAnalysis = (
    BTreeMap<usize, usize>,
    Vec<Vec<usize>>,
    BTreeMap<usize, Rational>,
);

struct OrderGraph {
    /// Union-find parent vector over node ids.
    parent: Vec<usize>,
    /// For each root: the constant its class is pinned to, if any.
    pinned: BTreeMap<usize, Rational>,
    /// Edges `(from, to, strict)` between class representatives.
    edges: Vec<(usize, usize, bool)>,
    /// Node id of each variable (dense) and each constant.
    var_node: Vec<usize>,
    const_node: BTreeMap<Rational, usize>,
}

impl OrderGraph {
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Union two classes; returns `None` on contradiction (two distinct
    /// constants merged).
    fn union(&mut self, a: usize, b: usize) -> Option<()> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Some(());
        }
        let pa = self.pinned.get(&ra).copied();
        let pb = self.pinned.get(&rb).copied();
        if let (Some(ca), Some(cb)) = (pa, pb) {
            if ca != cb {
                return None;
            }
        }
        self.parent[ra] = rb;
        if let Some(c) = pa {
            self.pinned.insert(rb, c);
        }
        Some(())
    }

    fn node_of(&mut self, t: Term) -> usize {
        match t {
            Term::Var(v) => self.var_node[v.index()],
            Term::Const(c) => self.const_node[&c],
        }
    }

    /// Build the graph; `None` indicates a contradiction found during
    /// equality merging.
    fn build(tuple: &GeneralizedTuple) -> Option<OrderGraph> {
        let consts: Vec<Rational> = tuple.constants().into_iter().collect();
        let nvars = tuple.arity as usize;
        let n = nvars + consts.len();
        let mut g = OrderGraph {
            parent: (0..n).collect(),
            pinned: BTreeMap::new(),
            edges: Vec::new(),
            var_node: (0..nvars).collect(),
            const_node: consts
                .iter()
                .enumerate()
                .map(|(i, c)| (*c, nvars + i))
                .collect(),
        };
        for (i, c) in consts.iter().enumerate() {
            g.pinned.insert(nvars + i, *c);
        }
        // Built-in order between consecutive constants (sorted already).
        for w in consts.windows(2) {
            let a = g.const_node[&w[0]];
            let b = g.const_node[&w[1]];
            g.edges.push((a, b, true));
        }
        // Equality atoms first.
        for a in &tuple.atoms {
            if a.op() == CompOp::Eq {
                let x = g.node_of(a.lhs());
                let y = g.node_of(a.rhs());
                g.union(x, y)?;
            }
        }
        // Inequality atoms as edges.
        for a in &tuple.atoms {
            match a.op() {
                CompOp::Eq => {}
                op => {
                    let x = g.node_of(a.lhs());
                    let y = g.node_of(a.rhs());
                    g.edges.push((x, y, op.is_strict()));
                }
            }
        }
        Some(g)
    }

    /// Satisfiable iff no strongly connected component (over all edges,
    /// strict and weak) contains a strict edge, and no SCC merges two
    /// distinct pinned constants.
    fn consistent(mut self) -> bool {
        self.sccs_ok().is_some()
    }

    /// Compute SCC ids per class representative; `None` if inconsistent.
    /// On success returns `(scc_of_root, topo_order_of_sccs, scc_pin)`.
    fn sccs_ok(&mut self) -> Option<SccAnalysis> {
        // Collapse to representatives.
        let n = self.parent.len();
        let mut roots = BTreeSet::new();
        for i in 0..n {
            let r = self.find(i);
            roots.insert(r);
        }
        let idx: BTreeMap<usize, usize> = roots.iter().enumerate().map(|(i, r)| (*r, i)).collect();
        let m = roots.len();
        let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); m];
        let edges = self.edges.clone();
        for (a, b, s) in edges {
            let ra = idx[&self.find(a)];
            let rb = idx[&self.find(b)];
            if ra == rb {
                if s {
                    return None; // x < x
                }
                continue;
            }
            adj[ra].push((rb, s));
        }
        // Tarjan SCC (iterative).
        let sccs = tarjan(&adj);
        let mut scc_of = vec![usize::MAX; m];
        for (si, comp) in sccs.iter().enumerate() {
            for &v in comp {
                scc_of[v] = si;
            }
        }
        // Reject strict edges within an SCC.
        for (u, nexts) in adj.iter().enumerate() {
            for &(v, s) in nexts {
                if s && scc_of[u] == scc_of[v] {
                    return None;
                }
            }
        }
        // Topological order of the SCC DAG (Tarjan emits reverse topological).
        let roots_vec: Vec<usize> = roots.iter().copied().collect();
        let mut comps = sccs;
        comps.reverse();
        // Map local ids back to union-find roots.
        let comps_roots: Vec<Vec<usize>> = comps
            .iter()
            .map(|comp| comp.iter().map(|&l| roots_vec[l]).collect())
            .collect();
        // Renumber SCC ids to topological position for callers.
        let mut renum = BTreeMap::new();
        for (pos, comp) in comps_roots.iter().enumerate() {
            for r in comp {
                renum.insert(*r, pos);
            }
        }
        // Pins per SCC: all members of an SCC are forced equal, so two
        // distinct pinned constants in one SCC is a contradiction. (Pin
        // *ordering* along DAG paths needs no separate check: constant nodes
        // carry built-in strict chain edges, so any violation would have
        // produced a strict cycle above.)
        let mut pin_topo: BTreeMap<usize, Rational> = BTreeMap::new();
        for (pos, comp) in comps_roots.iter().enumerate() {
            for r in comp {
                if let Some(c) = self.pinned.get(r) {
                    if let Some(c2) = pin_topo.get(&pos) {
                        if c2 != c {
                            return None;
                        }
                    }
                    pin_topo.insert(pos, *c);
                }
            }
        }
        Some((renum, comps_roots, pin_topo))
    }

    /// Construct a witness point.
    fn witness(mut self, arity: u32) -> Option<Vec<Rational>> {
        let (renum, comps, pins) = self.sccs_ok()?;
        // Assign a rational to each SCC in topological order such that all
        // edges (which now go forward or within an SCC weakly) are satisfied.
        // Between SCCs connected by a weak edge equality is allowed, but
        // assigning strictly increasing values along topo order except where
        // pins dictate otherwise is always safe... except pins impose exact
        // values and order among pinned SCCs is consistent with topo order
        // only partially. We therefore solve left to right:
        //  - keep a running strict lower bound `low` (last assigned value)
        //    for SCCs reachable so far; to stay sound we simply require each
        //    assigned value to strictly exceed every predecessor's value
        //    when a path exists. Tracking exact reachability is O(m²) worst
        //    case but components are few.
        let m = comps.len();
        // adjacency between topo sccs with strictness
        let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); m];
        let edges = self.edges.clone();
        for (a, b, s) in edges {
            let ra = self.find(a);
            let rb = self.find(b);
            let (pa, pb) = (renum[&ra], renum[&rb]);
            if pa != pb {
                adj[pa].push((pb, s));
            }
        }
        // For each scc: max over predecessors of (pred value, strict?).
        let mut value: Vec<Option<Rational>> = vec![None; m];
        let mut lower: Vec<Option<(Rational, bool)>> = vec![None; m]; // (bound, strict)
        for pos in 0..m {
            // compute value
            let v = if let Some(c) = pins.get(&pos) {
                // check against accumulated lower bound
                if let Some((b, strict)) = &lower[pos] {
                    if (*strict && c <= b) || (!*strict && c < b) {
                        return None;
                    }
                }
                *c
            } else {
                match &lower[pos] {
                    None => {
                        // unconstrained below: pick min(pin values)-1-pos or 0
                        Rational::from_int(-(1 + pos as i64))
                            + pins.values().min().copied().unwrap_or(Rational::ZERO)
                    }
                    Some((b, strict)) => {
                        if *strict {
                            // strictly above b: need next pinned constant above?
                            // No upper constraint tracked here: any value > b
                            // works for predecessors; successors handle their
                            // own bounds. But a pinned successor might force a
                            // ceiling. To remain sound, choose b + epsilon
                            // where epsilon smaller than the gap to the next
                            // pinned constant greater than b, if any.
                            let next_pin = pins.values().filter(|c| *c > b).min();
                            match next_pin {
                                Some(c) => b.midpoint(c).ok()?,
                                None => b + &Rational::ONE,
                            }
                        } else {
                            *b
                        }
                    }
                }
            };
            value[pos] = Some(v);
            for &(succ, s) in &adj[pos] {
                let cur = lower[succ].take();
                let cand = (v, s);
                lower[succ] = Some(match cur {
                    None => cand,
                    Some((b, bs)) => {
                        if v > b || (v == b && s && !bs) {
                            cand
                        } else {
                            (b, bs)
                        }
                    }
                });
            }
        }
        // Read off variable values.
        let mut point = Vec::with_capacity(arity as usize);
        for i in 0..arity as usize {
            let r = self.find(self.var_node[i]);
            let pos = renum[&r];
            point.push(value[pos]?);
        }
        Some(point)
    }
}

/// Iterative Tarjan SCC; returns components in reverse topological order.
fn tarjan(adj: &[Vec<(usize, bool)>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0;
    let mut comps = Vec::new();
    // Explicit DFS stack: (node, edge iterator position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ei < adj[v].len() {
                let (w, _) = adj[v][*ei];
                *ei += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::RawOp;
    use crate::rational::rat;

    fn raw(l: impl Into<Term>, op: RawOp, r: impl Into<Term>) -> RawAtom {
        RawAtom::new(l, op, r)
    }

    fn v(i: u32) -> Term {
        Term::var(i)
    }

    fn c(n: i64) -> Term {
        Term::cst(rat(n as i128, 1))
    }

    fn single(arity: u32, raws: Vec<RawAtom>) -> GeneralizedTuple {
        let mut ts = GeneralizedTuple::from_raw(arity, raws);
        assert_eq!(ts.len(), 1);
        ts.pop().unwrap()
    }

    #[test]
    fn top_is_satisfiable_and_total() {
        let t = GeneralizedTuple::top(2);
        assert!(t.is_satisfiable());
        assert!(t.contains_point(&[rat(5, 1), rat(-3, 2)]));
        assert!(t.witness().is_some());
    }

    #[test]
    fn triangle_example_from_paper() {
        // (x <= y ∧ x >= 0 ∧ y <= 10): the paper's binary generalized tuple.
        let t = single(
            2,
            vec![
                raw(v(0), RawOp::Le, v(1)),
                raw(v(0), RawOp::Ge, c(0)),
                raw(v(1), RawOp::Le, c(10)),
            ],
        );
        assert!(t.is_satisfiable());
        assert!(t.contains_point(&[rat(1, 1), rat(2, 1)]));
        assert!(!t.contains_point(&[rat(2, 1), rat(1, 1)]));
        assert!(!t.contains_point(&[rat(-1, 1), rat(2, 1)]));
        let w = t.witness().unwrap();
        assert!(t.contains_point(&w), "witness {:?} not in tuple", w);
    }

    #[test]
    fn strict_cycle_unsat() {
        let ts = GeneralizedTuple::from_raw(
            3,
            vec![
                raw(v(0), RawOp::Lt, v(1)),
                raw(v(1), RawOp::Lt, v(2)),
                raw(v(2), RawOp::Lt, v(0)),
            ],
        );
        assert!(ts.is_empty());
    }

    #[test]
    fn weak_cycle_forces_equality_sat() {
        let t = single(
            2,
            vec![raw(v(0), RawOp::Le, v(1)), raw(v(1), RawOp::Le, v(0))],
        );
        assert!(t.is_satisfiable());
        let w = t.witness().unwrap();
        assert_eq!(w[0], w[1]);
    }

    #[test]
    fn weak_cycle_plus_strict_unsat() {
        let ts = GeneralizedTuple::from_raw(
            2,
            vec![
                raw(v(0), RawOp::Le, v(1)),
                raw(v(1), RawOp::Le, v(0)),
                raw(v(0), RawOp::Lt, v(1)),
            ],
        );
        assert!(ts.is_empty() || ts.iter().all(|t| !t.is_satisfiable()));
    }

    #[test]
    fn constants_inconsistent() {
        let ts = GeneralizedTuple::from_raw(
            1,
            vec![raw(v(0), RawOp::Eq, c(1)), raw(v(0), RawOp::Eq, c(2))],
        );
        assert!(ts.iter().all(|t| !t.is_satisfiable()));
    }

    #[test]
    fn constant_sandwich() {
        // 3 < x < 4 is satisfiable in Q (not in Z!)
        let t = single(
            1,
            vec![raw(c(3), RawOp::Lt, v(0)), raw(v(0), RawOp::Lt, c(4))],
        );
        assert!(t.is_satisfiable());
        let w = t.witness().unwrap();
        assert!(rat(3, 1) < w[0] && w[0] < rat(4, 1));
        // 3 < x < 3 is not
        let ts = GeneralizedTuple::from_raw(
            1,
            vec![raw(c(3), RawOp::Lt, v(0)), raw(v(0), RawOp::Lt, c(3))],
        );
        assert!(ts.is_empty() || ts.iter().all(|t| !t.is_satisfiable()));
    }

    #[test]
    fn eliminate_middle_variable() {
        // ∃x1. x0 < x1 ∧ x1 < x2  ≡  x0 < x2
        let t = single(
            3,
            vec![raw(v(0), RawOp::Lt, v(1)), raw(v(1), RawOp::Lt, v(2))],
        );
        let e = t.eliminate(Var(1)).unwrap();
        assert!(!e.atoms().iter().any(|a| a.mentions(Var(1))));
        assert!(e.contains_point(&[rat(0, 1), rat(99, 1), rat(1, 1)]));
        assert!(!e.contains_point(&[rat(1, 1), rat(99, 1), rat(0, 1)]));
    }

    #[test]
    fn eliminate_with_equality_substitutes() {
        // ∃x1. x1 = x0 ∧ x1 < 5  ≡  x0 < 5
        let t = single(
            2,
            vec![raw(v(1), RawOp::Eq, v(0)), raw(v(1), RawOp::Lt, c(5))],
        );
        let e = t.eliminate(Var(1)).unwrap();
        assert!(e.contains_point(&[rat(4, 1), rat(0, 1)]));
        assert!(!e.contains_point(&[rat(6, 1), rat(0, 1)]));
    }

    #[test]
    fn eliminate_unbounded_side_drops_constraint() {
        // ∃x1. x0 < x1  ≡  true (no endpoints)
        let t = single(2, vec![raw(v(0), RawOp::Lt, v(1))]);
        let e = t.eliminate(Var(1)).unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn eliminate_strictness_propagates() {
        // ∃x1. x0 <= x1 ∧ x1 <= x2  ≡  x0 <= x2 (weak)
        let t = single(
            3,
            vec![raw(v(0), RawOp::Le, v(1)), raw(v(1), RawOp::Le, v(2))],
        );
        let e = t.eliminate(Var(1)).unwrap();
        assert!(e.contains_point(&[rat(1, 1), rat(0, 1), rat(1, 1)]));
        // ∃x1. x0 < x1 ∧ x1 <= x2  ≡  x0 < x2 (strict)
        let t = single(
            3,
            vec![raw(v(0), RawOp::Lt, v(1)), raw(v(1), RawOp::Le, v(2))],
        );
        let e = t.eliminate(Var(1)).unwrap();
        assert!(!e.contains_point(&[rat(1, 1), rat(0, 1), rat(1, 1)]));
    }

    #[test]
    fn entailment() {
        let t = single(
            2,
            vec![raw(v(0), RawOp::Lt, c(3)), raw(c(5), RawOp::Lt, v(1))],
        );
        let a = Atom::normalized(v(0), CompOp::Lt, v(1)).unwrap()[0];
        assert!(t.entails(&a));
        let b = Atom::normalized(v(1), CompOp::Lt, v(0)).unwrap()[0];
        assert!(!t.entails(&b));
        let le = Atom::normalized(v(0), CompOp::Le, c(3)).unwrap()[0];
        assert!(t.entails(&le));
    }

    #[test]
    fn subsumption() {
        let wide = single(1, vec![raw(v(0), RawOp::Lt, c(10))]);
        let narrow = single(1, vec![raw(v(0), RawOp::Lt, c(5))]);
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(GeneralizedTuple::top(1).subsumes(&narrow));
    }

    #[test]
    fn simplify_removes_redundant() {
        let t = single(
            1,
            vec![raw(v(0), RawOp::Lt, c(10)), raw(v(0), RawOp::Lt, c(5))],
        );
        let s = t.simplify();
        assert_eq!(s.len(), 1);
        assert!(s.contains_point(&[rat(4, 1)]));
        assert!(!s.contains_point(&[rat(6, 1)]));
    }

    #[test]
    fn point_tuple() {
        let t = GeneralizedTuple::point(&[rat(1, 2), rat(3, 1)]);
        assert!(t.contains_point(&[rat(1, 2), rat(3, 1)]));
        assert!(!t.contains_point(&[rat(1, 2), rat(4, 1)]));
        assert_eq!(t.witness().unwrap(), vec![rat(1, 2), rat(3, 1)]);
    }

    #[test]
    fn witness_respects_pins_and_order() {
        // 0 < x0, x0 < x1, x1 = 1/2 ⇒ need 0 < x0 < 1/2
        let t = single(
            2,
            vec![
                raw(c(0), RawOp::Lt, v(0)),
                raw(v(0), RawOp::Lt, v(1)),
                raw(v(1), RawOp::Eq, Term::cst(rat(1, 2))),
            ],
        );
        let w = t.witness().unwrap();
        assert!(t.contains_point(&w), "bad witness {:?}", w);
    }

    #[test]
    fn from_raw_ne_splits() {
        let ts = GeneralizedTuple::from_raw(1, vec![raw(v(0), RawOp::Ne, c(0))]);
        assert_eq!(ts.len(), 2);
        let covered = |p: &[Rational]| ts.iter().any(|t| t.contains_point(p));
        assert!(covered(&[rat(1, 1)]));
        assert!(covered(&[rat(-1, 1)]));
        assert!(!covered(&[rat(0, 1)]));
    }
}
