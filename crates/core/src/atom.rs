//! Atomic dense-order constraints.
//!
//! Following \[KKR90\] as recalled in Section 2 of the paper, an atomic
//! constraint compares two *terms* — variables (columns of a generalized
//! relation) or rational constants — with one of `<, ≤, =, ≠, ≥, >`.
//!
//! Internally every atom is kept in a normal form over the operators
//! `{<, ≤, =}` only: `>` and `≥` are flipped at construction, and `≠` is
//! *split* into the disjunction `< ∨ >` when a [`RawAtom`] is lowered into
//! tuples (see [`crate::tuple`]). Constant-vs-constant comparisons evaluate
//! immediately to ⊤/⊥. This normal form is what makes dense-order quantifier
//! elimination a pure bound-combination step.

use crate::rational::Rational;

use std::fmt;

/// A variable, identified by its column index within a generalized relation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The column index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A term of the dense-order language: a variable or a rational constant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A column variable.
    Var(Var),
    /// A rational constant.
    Const(Rational),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(i: u32) -> Term {
        Term::Var(Var(i))
    }

    /// Shorthand for a constant term.
    pub fn cst(r: impl Into<Rational>) -> Term {
        Term::Const(r.into())
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    pub fn as_const(&self) -> Option<Rational> {
        match self {
            Term::Const(c) => Some(*c),
            Term::Var(_) => None,
        }
    }

    /// Evaluate under a point (assignment to all columns).
    pub fn eval(&self, point: &[Rational]) -> Rational {
        match self {
            Term::Var(v) => point[v.index()],
            Term::Const(c) => *c,
        }
    }

    /// Apply a column renaming.
    pub fn rename(&self, f: impl Fn(Var) -> Var) -> Term {
        match self {
            Term::Var(v) => Term::Var(f(*v)),
            Term::Const(c) => Term::Const(*c),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{}", v),
            Term::Const(c) => write!(f, "{}", c),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

impl From<Rational> for Term {
    fn from(c: Rational) -> Term {
        Term::Const(c)
    }
}

/// The full comparison vocabulary accepted at the API surface.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RawOp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `≥`
    Ge,
    /// `>`
    Gt,
}

impl RawOp {
    /// Evaluate the comparison on two rationals.
    pub fn eval(self, a: &Rational, b: &Rational) -> bool {
        match self {
            RawOp::Lt => a < b,
            RawOp::Le => a <= b,
            RawOp::Eq => a == b,
            RawOp::Ne => a != b,
            RawOp::Ge => a >= b,
            RawOp::Gt => a > b,
        }
    }

    /// The comparison with operands swapped (`a op b` ⟺ `b op.flip() a`).
    pub fn flip(self) -> RawOp {
        match self {
            RawOp::Lt => RawOp::Gt,
            RawOp::Le => RawOp::Ge,
            RawOp::Eq => RawOp::Eq,
            RawOp::Ne => RawOp::Ne,
            RawOp::Ge => RawOp::Le,
            RawOp::Gt => RawOp::Lt,
        }
    }

    /// The logical negation (`¬(a op b)` ⟺ `a op.negate() b`).
    pub fn negate(self) -> RawOp {
        match self {
            RawOp::Lt => RawOp::Ge,
            RawOp::Le => RawOp::Gt,
            RawOp::Eq => RawOp::Ne,
            RawOp::Ne => RawOp::Eq,
            RawOp::Ge => RawOp::Lt,
            RawOp::Gt => RawOp::Le,
        }
    }
}

impl fmt::Display for RawOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RawOp::Lt => "<",
            RawOp::Le => "<=",
            RawOp::Eq => "=",
            RawOp::Ne => "!=",
            RawOp::Ge => ">=",
            RawOp::Gt => ">",
        };
        f.write_str(s)
    }
}

/// The normalized comparison operators stored inside generalized tuples.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CompOp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `=`
    Eq,
}

impl CompOp {
    /// Evaluate the comparison on two rationals.
    pub fn eval(self, a: &Rational, b: &Rational) -> bool {
        match self {
            CompOp::Lt => a < b,
            CompOp::Le => a <= b,
            CompOp::Eq => a == b,
        }
    }

    /// Whether the operator is a strict inequality.
    pub fn is_strict(self) -> bool {
        matches!(self, CompOp::Lt)
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Eq => "=",
        };
        f.write_str(s)
    }
}

/// A raw (unnormalized) atomic constraint `lhs op rhs`, as written by users
/// or produced by formula translation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RawAtom {
    /// Left operand.
    pub lhs: Term,
    /// Comparison operator (any of the six).
    pub op: RawOp,
    /// Right operand.
    pub rhs: Term,
}

impl RawAtom {
    /// Construct a raw atom.
    pub fn new(lhs: impl Into<Term>, op: RawOp, rhs: impl Into<Term>) -> RawAtom {
        RawAtom {
            lhs: lhs.into(),
            op,
            rhs: rhs.into(),
        }
    }

    /// Evaluate at a point.
    pub fn eval(&self, point: &[Rational]) -> bool {
        self.op.eval(&self.lhs.eval(point), &self.rhs.eval(point))
    }

    /// Lower into disjunctive normal form over normalized atoms:
    /// the result is a list of alternatives, each a list of [`Atom`]s, whose
    /// disjunction is equivalent to this raw atom. `≠` produces two
    /// alternatives, everything else one (or zero atoms if trivially true).
    /// Returns `None` if the atom is trivially false.
    pub fn normalize(&self) -> Option<Vec<Vec<Atom>>> {
        match self.op {
            RawOp::Ne => {
                // a ≠ b ⟺ a < b ∨ b < a
                let mut alts = Vec::new();
                if let Some(alt) = Atom::normalized(self.lhs, CompOp::Lt, self.rhs) {
                    alts.push(alt.into_iter().collect());
                }
                if let Some(alt) = Atom::normalized(self.rhs, CompOp::Lt, self.lhs) {
                    alts.push(alt.into_iter().collect());
                }
                if alts.is_empty() {
                    None
                } else {
                    Some(alts)
                }
            }
            RawOp::Gt => Atom::normalized(self.rhs, CompOp::Lt, self.lhs).map(|a| vec![a]),
            RawOp::Ge => Atom::normalized(self.rhs, CompOp::Le, self.lhs).map(|a| vec![a]),
            RawOp::Lt => Atom::normalized(self.lhs, CompOp::Lt, self.rhs).map(|a| vec![a]),
            RawOp::Le => Atom::normalized(self.lhs, CompOp::Le, self.rhs).map(|a| vec![a]),
            RawOp::Eq => Atom::normalized(self.lhs, CompOp::Eq, self.rhs).map(|a| vec![a]),
        }
    }
}

impl fmt::Display for RawAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A normalized atomic constraint: `lhs op rhs` with `op ∈ {<, ≤, =}`,
/// guaranteed not to be a decidable constant comparison and not reflexive.
///
/// Orientation convention: for `=`, the smaller term (in the arbitrary
/// `Term` order, variables before constants) is on the left, so syntactic
/// equality of atoms coincides with logical equality of equations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Atom {
    lhs: Term,
    op: CompOp,
    rhs: Term,
}

impl Atom {
    /// Normalize `lhs op rhs`. Returns:
    /// * `Some(vec![])` if the atom is trivially true (e.g. `1 < 2`, `x ≤ x`),
    /// * `Some(vec![atom])` for a genuine constraint,
    /// * `None` if the atom is trivially false (e.g. `2 < 1`, `x < x`).
    pub fn normalized(lhs: Term, op: CompOp, rhs: Term) -> Option<Vec<Atom>> {
        // Constant-constant: decide now.
        if let (Term::Const(a), Term::Const(b)) = (lhs, rhs) {
            return if op.eval(&a, &b) { Some(vec![]) } else { None };
        }
        // Reflexive.
        if lhs == rhs {
            return match op {
                CompOp::Lt => None,
                CompOp::Le | CompOp::Eq => Some(vec![]),
            };
        }
        // Orient equalities canonically.
        let (lhs, rhs) = if op == CompOp::Eq && rhs < lhs {
            (rhs, lhs)
        } else {
            (lhs, rhs)
        };
        Some(vec![Atom { lhs, op, rhs }])
    }

    /// The left operand.
    pub fn lhs(&self) -> Term {
        self.lhs
    }

    /// The operator.
    pub fn op(&self) -> CompOp {
        self.op
    }

    /// The right operand.
    pub fn rhs(&self) -> Term {
        self.rhs
    }

    /// Evaluate at a point.
    pub fn eval(&self, point: &[Rational]) -> bool {
        self.op.eval(&self.lhs.eval(point), &self.rhs.eval(point))
    }

    /// Whether the atom mentions the given variable.
    pub fn mentions(&self, v: Var) -> bool {
        self.lhs == Term::Var(v) || self.rhs == Term::Var(v)
    }

    /// All variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        [self.lhs.as_var(), self.rhs.as_var()].into_iter().flatten()
    }

    /// All constants mentioned.
    pub fn consts(&self) -> impl Iterator<Item = Rational> {
        [self.lhs.as_const(), self.rhs.as_const()]
            .into_iter()
            .flatten()
    }

    /// Substitute `v := t`, renormalizing (the result may be trivial).
    pub fn substitute(&self, v: Var, t: Term) -> Option<Vec<Atom>> {
        let sub = |term: Term| if term == Term::Var(v) { t } else { term };
        Atom::normalized(sub(self.lhs), self.op, sub(self.rhs))
    }

    /// Apply a column renaming (which must be injective on mentioned vars).
    pub fn rename(&self, f: impl Fn(Var) -> Var) -> Atom {
        let lhs = self.lhs.rename(&f);
        let rhs = self.rhs.rename(&f);
        // Re-orient equalities after renaming to preserve the invariant.
        if self.op == CompOp::Eq && rhs < lhs {
            Atom {
                lhs: rhs,
                op: self.op,
                rhs: lhs,
            }
        } else {
            Atom {
                lhs,
                op: self.op,
                rhs,
            }
        }
    }

    /// Negate: `¬(a < b) = b ≤ a`, `¬(a ≤ b) = b < a`,
    /// `¬(a = b) = a < b ∨ b < a` (two alternatives).
    pub fn negate(&self) -> Vec<Vec<Atom>> {
        match self.op {
            CompOp::Lt => match Atom::normalized(self.rhs, CompOp::Le, self.lhs) {
                Some(a) => vec![a],
                None => vec![],
            },
            CompOp::Le => match Atom::normalized(self.rhs, CompOp::Lt, self.lhs) {
                Some(a) => vec![a],
                None => vec![],
            },
            CompOp::Eq => {
                let mut alts = Vec::new();
                if let Some(a) = Atom::normalized(self.lhs, CompOp::Lt, self.rhs) {
                    alts.push(a);
                }
                if let Some(a) = Atom::normalized(self.rhs, CompOp::Lt, self.lhs) {
                    alts.push(a);
                }
                alts
            }
        }
    }

    /// Map constants through a monotone function (used for automorphisms).
    pub fn map_consts(&self, f: &impl Fn(&Rational) -> Rational) -> Atom {
        let map = |t: Term| match t {
            Term::Const(c) => Term::Const(f(&c)),
            v => v,
        };
        Atom {
            lhs: map(self.lhs),
            op: self.op,
            rhs: map(self.rhs),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    fn v(i: u32) -> Term {
        Term::var(i)
    }

    fn c(n: i64) -> Term {
        Term::cst(rat(n as i128, 1))
    }

    #[test]
    fn constant_comparisons_decide() {
        assert_eq!(Atom::normalized(c(1), CompOp::Lt, c(2)), Some(vec![]));
        assert_eq!(Atom::normalized(c(2), CompOp::Lt, c(1)), None);
        assert_eq!(Atom::normalized(c(2), CompOp::Eq, c(2)), Some(vec![]));
    }

    #[test]
    fn reflexive_atoms_decide() {
        assert_eq!(Atom::normalized(v(0), CompOp::Lt, v(0)), None);
        assert_eq!(Atom::normalized(v(0), CompOp::Le, v(0)), Some(vec![]));
        assert_eq!(Atom::normalized(v(0), CompOp::Eq, v(0)), Some(vec![]));
    }

    #[test]
    fn equality_orientation_canonical() {
        let a = Atom::normalized(v(1), CompOp::Eq, v(0)).unwrap();
        let b = Atom::normalized(v(0), CompOp::Eq, v(1)).unwrap();
        assert_eq!(a, b);
        let a = Atom::normalized(c(3), CompOp::Eq, v(0)).unwrap();
        let b = Atom::normalized(v(0), CompOp::Eq, c(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn raw_op_negate_flip() {
        for op in [
            RawOp::Lt,
            RawOp::Le,
            RawOp::Eq,
            RawOp::Ne,
            RawOp::Ge,
            RawOp::Gt,
        ] {
            for (a, b) in [
                (rat(1, 1), rat(2, 1)),
                (rat(2, 1), rat(2, 1)),
                (rat(3, 1), rat(2, 1)),
            ] {
                assert_eq!(op.eval(&a, &b), !op.negate().eval(&a, &b), "{op:?} {a} {b}");
                assert_eq!(op.eval(&a, &b), op.flip().eval(&b, &a), "{op:?} {a} {b}");
            }
        }
    }

    #[test]
    fn ne_normalizes_to_two_alternatives() {
        let raw = RawAtom::new(v(0), RawOp::Ne, c(5));
        let alts = raw.normalize().unwrap();
        assert_eq!(alts.len(), 2);
    }

    #[test]
    fn ne_on_equal_constants_is_false() {
        let raw = RawAtom::new(c(5), RawOp::Ne, c(5));
        assert!(raw.normalize().is_none());
    }

    #[test]
    fn negate_roundtrip_semantics() {
        let atom = Atom::normalized(v(0), CompOp::Le, v(1)).unwrap()[0];
        let neg = atom.negate();
        // semantics check on sample points
        for p in [
            vec![rat(0, 1), rat(1, 1)],
            vec![rat(1, 1), rat(0, 1)],
            vec![rat(1, 1), rat(1, 1)],
        ] {
            let val = atom.eval(&p);
            let negval = neg.iter().any(|alt| alt.iter().all(|a| a.eval(&p)));
            assert_eq!(val, !negval);
        }
    }

    #[test]
    fn substitution_renormalizes() {
        // x0 < x1, substitute x1 := 3  =>  x0 < 3
        let atom = Atom::normalized(v(0), CompOp::Lt, v(1)).unwrap()[0];
        let result = atom.substitute(Var(1), c(3)).unwrap();
        assert_eq!(result.len(), 1);
        assert!(result[0].eval(&[rat(2, 1), rat(0, 1)]));
        assert!(!result[0].eval(&[rat(4, 1), rat(0, 1)]));
        // x0 < x1, substitute x0 := x1 => false
        assert_eq!(atom.substitute(Var(0), v(1)), None);
    }
}
