//! Databases: named generalized relations over a schema.
//!
//! A *dense-order constraint database* (Definition 2.x of the paper) is a
//! finitely representable expansion of `Q = (Q, ≤)` by finitely many
//! relations, each given as a generalized relation. The schema assigns each
//! relation name an arity; instances are checked against it.

use crate::automorphism::Automorphism;
use crate::rational::Rational;
use crate::relation::GeneralizedRelation;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A database schema: relation names with arities.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    arities: BTreeMap<String, u32>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Declare a relation.
    pub fn with(mut self, name: &str, arity: u32) -> Schema {
        self.arities.insert(name.to_string(), arity);
        self
    }

    /// Arity of a relation, if declared.
    pub fn arity(&self, name: &str) -> Option<u32> {
        self.arities.get(name).copied()
    }

    /// Iterate declared relations.
    pub fn relations(&self) -> impl Iterator<Item = (&str, u32)> {
        self.arities.iter().map(|(n, a)| (n.as_str(), *a))
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }
}

/// Errors raised by database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatabaseError {
    /// Relation name not declared in the schema.
    UnknownRelation(String),
    /// Instance arity differs from the declared arity.
    ArityMismatch {
        /// Relation name.
        name: String,
        /// Declared arity.
        declared: u32,
        /// Arity of the offending instance.
        got: u32,
    },
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseError::UnknownRelation(n) => write!(f, "unknown relation {n}"),
            DatabaseError::ArityMismatch {
                name,
                declared,
                got,
            } => {
                write!(
                    f,
                    "relation {name} declared with arity {declared}, instance has {got}"
                )
            }
        }
    }
}

impl std::error::Error for DatabaseError {}

/// A dense-order constraint database instance.
///
/// Relation instances are stored behind `Arc`s, so cloning a database —
/// or building a successor catalog that differs in one relation — is a
/// handful of pointer bumps, not a deep copy of every DNF. This is the
/// representation-level sharing that keeps MVCC generations cheap.
#[derive(Clone, Debug, PartialEq)]
pub struct Database {
    schema: Schema,
    relations: BTreeMap<String, Arc<GeneralizedRelation>>,
}

impl Database {
    /// Empty instance of a schema: every declared relation is empty.
    pub fn new(schema: Schema) -> Database {
        let relations = schema
            .relations()
            .map(|(n, a)| (n.to_string(), Arc::new(GeneralizedRelation::empty(a))))
            .collect();
        Database { schema, relations }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Set a relation instance.
    pub fn set(&mut self, name: &str, rel: GeneralizedRelation) -> Result<(), DatabaseError> {
        self.set_shared(name, Arc::new(rel))
    }

    /// Set a relation instance from an existing shared handle without
    /// copying its representation (the MVCC store composes catalogs from
    /// per-shard relation maps this way).
    pub fn set_shared(
        &mut self,
        name: &str,
        rel: Arc<GeneralizedRelation>,
    ) -> Result<(), DatabaseError> {
        match self.schema.arity(name) {
            None => Err(DatabaseError::UnknownRelation(name.to_string())),
            Some(a) if a != rel.arity() => Err(DatabaseError::ArityMismatch {
                name: name.to_string(),
                declared: a,
                got: rel.arity(),
            }),
            Some(_) => {
                self.relations.insert(name.to_string(), rel);
                Ok(())
            }
        }
    }

    /// Shared handle to a relation instance (cheap: bumps the refcount).
    pub fn get_shared(&self, name: &str) -> Option<Arc<GeneralizedRelation>> {
        self.relations.get(name).cloned()
    }

    /// Builder-style `set` that panics on schema violations (tests/examples).
    pub fn with(mut self, name: &str, rel: GeneralizedRelation) -> Database {
        self.set(name, rel).expect("schema violation");
        self
    }

    /// Get a relation instance.
    pub fn get(&self, name: &str) -> Option<&GeneralizedRelation> {
        self.relations.get(name).map(|r| r.as_ref())
    }

    /// Iterate relation instances.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &GeneralizedRelation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r.as_ref()))
    }

    /// All constants appearing anywhere in the instance — the finite data
    /// the paper's *standard encoding* serializes, and the anchor set for
    /// cell decompositions and automorphism tests.
    pub fn constants(&self) -> BTreeSet<Rational> {
        self.relations
            .values()
            .flat_map(|r| r.constants())
            .collect()
    }

    /// Total representation size (number of atoms), the data-complexity
    /// input measure.
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.size()).sum()
    }

    /// Image of the database under an automorphism of Q.
    pub fn apply_automorphism(&self, f: &Automorphism) -> Database {
        Database {
            schema: self.schema.clone(),
            relations: self
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), Arc::new(f.apply_relation(r))))
                .collect(),
        }
    }

    /// Semantic equivalence of two instances over the same schema.
    pub fn equivalent(&self, other: &Database) -> bool {
        if self.schema != other.schema {
            return false;
        }
        self.relations.iter().all(|(n, r)| {
            other
                .relations
                .get(n)
                .map(|r2| r.equivalent(r2))
                .unwrap_or(false)
        })
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "{name}/{} = {rel}", rel.arity())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{RawAtom, RawOp, Term};
    use crate::rational::rat;

    fn interval(lo: i64, hi: i64) -> GeneralizedRelation {
        GeneralizedRelation::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(lo as i128, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(hi as i128, 1))),
            ],
        )
    }

    #[test]
    fn schema_enforced() {
        let schema = Schema::new().with("R", 1);
        let mut db = Database::new(schema);
        assert!(db.set("R", interval(0, 1)).is_ok());
        assert!(matches!(
            db.set("S", interval(0, 1)),
            Err(DatabaseError::UnknownRelation(_))
        ));
        assert!(matches!(
            db.set("R", GeneralizedRelation::empty(2)),
            Err(DatabaseError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn constants_and_size() {
        let db = Database::new(Schema::new().with("R", 1).with("S", 1))
            .with("R", interval(0, 1))
            .with("S", interval(5, 9));
        let cs = db.constants();
        assert_eq!(cs.len(), 4);
        assert!(db.size() >= 4);
    }

    #[test]
    fn automorphism_image_and_equivalence() {
        let db = Database::new(Schema::new().with("R", 1)).with("R", interval(0, 10));
        let f = Automorphism::translation(rat(100, 1));
        let img = db.apply_automorphism(&f);
        assert!(img.get("R").unwrap().contains_point(&[rat(105, 1)]));
        assert!(!img.get("R").unwrap().contains_point(&[rat(5, 1)]));
        assert!(!db.equivalent(&img));
        let back = img.apply_automorphism(&f.inverse());
        assert!(db.equivalent(&back));
    }

    #[test]
    fn empty_instance_has_empty_relations() {
        let db = Database::new(Schema::new().with("R", 2));
        assert!(db.get("R").unwrap().is_empty());
        assert_eq!(db.size(), 0);
    }
}
