//! Hash-consing: fingerprinted, `Arc`-backed handles for atoms and tuples.
//!
//! Every [`crate::tuple::GeneralizedTuple`] carries a precomputed 64-bit
//! *fingerprint* — an order-independent combination of per-atom hashes that
//! is updated incrementally as atoms are pushed. Fingerprints make hashing
//! O(1) (the `Hash` impls write only the fingerprint) and give equality and
//! subsumption checks a constant-time fast path; full structural comparison
//! is kept behind the fingerprint compare, so a collision can never produce
//! a wrong answer, only a slower one.
//!
//! On top of the fingerprints, an [`Interner`] deduplicates structurally
//! equal values into shared [`Interned`] handles: equality between handles
//! is a pointer compare first, then fingerprint, then (only on a genuine
//! collision) the full value. Process-wide interners for atoms and tuples
//! are provided ([`intern_atom`], [`intern_tuple`]); long-lived stores —
//! the Datalog engine's accumulated facts — intern their tuples so repeated
//! fixpoint stages share one allocation per distinct tuple.

use crate::atom::{Atom, Term};
use crate::rational::Rational;
use crate::tuple::GeneralizedTuple;

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fold one 64-bit word into a running fingerprint.
pub fn fold(h: u64, v: u64) -> u64 {
    mix64(h ^ v)
}

/// Fold a rational's canonical `(numerator, denominator)` into `h`.
pub fn fold_rational(h: u64, r: &Rational) -> u64 {
    let n = r.numer() as u128;
    let d = r.denom() as u128;
    let h = fold(h, n as u64);
    let h = fold(h, (n >> 64) as u64);
    let h = fold(h, d as u64);
    fold(h, (d >> 64) as u64)
}

fn fold_term(h: u64, t: &Term) -> u64 {
    match t {
        Term::Var(v) => fold(fold(h, 1), v.0 as u64),
        Term::Const(c) => fold_rational(fold(h, 2), c),
    }
}

/// The fingerprint of one normalized atom. Deterministic across processes
/// (no random hasher state), so fingerprints can be compared between runs.
pub fn atom_fingerprint(a: &Atom) -> u64 {
    let h = fold(0x6a09_e667_f3bc_c909, a.op() as u64);
    let h = fold_term(h, &a.lhs());
    fold_term(h, &a.rhs())
}

/// Values that expose a precomputed fingerprint.
pub trait Fingerprinted {
    /// The 64-bit fingerprint (equal values have equal fingerprints).
    fn fingerprint(&self) -> u64;
}

impl Fingerprinted for Atom {
    fn fingerprint(&self) -> u64 {
        atom_fingerprint(self)
    }
}

impl Fingerprinted for GeneralizedTuple {
    fn fingerprint(&self) -> u64 {
        GeneralizedTuple::fingerprint(self)
    }
}

/// A hash-consed handle: `Arc`-shared value plus its fingerprint.
#[derive(Debug)]
pub struct Interned<T>(Arc<Node<T>>);

#[derive(Debug)]
struct Node<T> {
    fp: u64,
    value: T,
}

impl<T> Interned<T> {
    /// Wrap a value without consulting any interner (used for values that
    /// are already known to be unique).
    pub fn solitary(fp: u64, value: T) -> Interned<T> {
        Interned(Arc::new(Node { fp, value }))
    }

    /// The precomputed fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.0.fp
    }

    /// The shared value.
    pub fn get(&self) -> &T {
        &self.0.value
    }

    /// Whether two handles share the same allocation (the hash-consing
    /// fast path: interning the same value twice yields pointer-equal
    /// handles).
    pub fn ptr_eq(&self, other: &Interned<T>) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<T> Clone for Interned<T> {
    fn clone(&self) -> Self {
        Interned(Arc::clone(&self.0))
    }
}

impl<T> Deref for Interned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0.value
    }
}

impl<T: PartialEq> PartialEq for Interned<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || (self.0.fp == other.0.fp && self.0.value == other.0.value)
    }
}

impl<T: Eq> Eq for Interned<T> {}

impl<T> std::hash::Hash for Interned<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.fp);
    }
}

const INTERNER_SHARDS: usize = 16;

/// A sharded hash-consing table: structurally equal values intern to the
/// same `Arc` allocation. Buckets are keyed by fingerprint; a bucket holds
/// every distinct value sharing that fingerprint (in practice one).
pub struct Interner<T> {
    shards: Vec<Mutex<HashMap<u64, Vec<Interned<T>>>>>,
}

impl<T: Fingerprinted + Eq + Clone> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

impl<T: Fingerprinted + Eq + Clone> Interner<T> {
    /// An empty interner.
    pub fn new() -> Interner<T> {
        Interner {
            shards: (0..INTERNER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Intern by reference: returns the shared handle, cloning the value
    /// only when it is not present yet.
    pub fn intern(&self, value: &T) -> Interned<T> {
        let fp = value.fingerprint();
        let shard = &self.shards[(fp as usize) % INTERNER_SHARDS];
        let mut map = shard.lock().expect("interner shard poisoned");
        let bucket = map.entry(fp).or_default();
        if let Some(handle) = bucket.iter().find(|h| h.0.value == *value) {
            return handle.clone();
        }
        let handle = Interned::solitary(fp, value.clone());
        bucket.push(handle.clone());
        handle
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("interner shard poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all interned values (existing handles stay valid — they own
    /// their `Arc`s; only the consing table forgets them).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("interner shard poisoned").clear();
        }
    }
}

/// The process-wide tuple interner.
pub fn tuple_interner() -> &'static Interner<GeneralizedTuple> {
    static INTERNER: OnceLock<Interner<GeneralizedTuple>> = OnceLock::new();
    INTERNER.get_or_init(Interner::new)
}

/// The process-wide atom interner.
pub fn atom_interner() -> &'static Interner<Atom> {
    static INTERNER: OnceLock<Interner<Atom>> = OnceLock::new();
    INTERNER.get_or_init(Interner::new)
}

/// Intern a tuple in the process-wide interner.
pub fn intern_tuple(t: &GeneralizedTuple) -> Interned<GeneralizedTuple> {
    tuple_interner().intern(t)
}

/// Intern an atom in the process-wide interner.
pub fn intern_atom(a: &Atom) -> Interned<Atom> {
    atom_interner().intern(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{CompOp, RawAtom, RawOp};
    use crate::rational::rat;

    fn atom(i: u32, op: CompOp, n: i64) -> Atom {
        Atom::normalized(Term::var(i), op, Term::cst(rat(n as i128, 1))).unwrap()[0]
    }

    #[test]
    fn interning_same_value_shares_allocation() {
        let interner: Interner<Atom> = Interner::new();
        let a = atom(0, CompOp::Lt, 5);
        let h1 = interner.intern(&a);
        let h2 = interner.intern(&a.clone());
        assert!(h1.ptr_eq(&h2));
        assert_eq!(interner.len(), 1);
        let b = atom(0, CompOp::Le, 5);
        let h3 = interner.intern(&b);
        assert!(!h1.ptr_eq(&h3));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn handle_equality_and_hash_use_fingerprint() {
        let a = atom(1, CompOp::Eq, 3);
        let h1 = Interned::solitary(atom_fingerprint(&a), a);
        let b = atom(1, CompOp::Eq, 3);
        let h2 = Interned::solitary(atom_fingerprint(&b), b);
        // Distinct allocations, equal values: equality holds via fp + value.
        assert!(!h1.ptr_eq(&h2));
        assert_eq!(h1, h2);
        use std::hash::{BuildHasher, RandomState};
        let s = RandomState::new();
        assert_eq!(s.hash_one(&h1), s.hash_one(&h2));
    }

    #[test]
    fn atom_fingerprints_distinguish_structure() {
        // Not a collision-resistance proof, just a sanity check that every
        // field feeds the fingerprint.
        let base = atom_fingerprint(&atom(0, CompOp::Lt, 5));
        assert_ne!(base, atom_fingerprint(&atom(1, CompOp::Lt, 5)));
        assert_ne!(base, atom_fingerprint(&atom(0, CompOp::Le, 5)));
        assert_ne!(base, atom_fingerprint(&atom(0, CompOp::Lt, 6)));
        let frac = Atom::normalized(Term::var(0), CompOp::Lt, Term::cst(rat(5, 2))).unwrap()[0];
        assert_ne!(base, atom_fingerprint(&frac));
    }

    #[test]
    fn tuple_interning_deduplicates_across_construction_paths() {
        let mk = || {
            GeneralizedTuple::from_raw(
                2,
                vec![
                    RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                    RawAtom::new(Term::var(0), RawOp::Ge, Term::cst(rat(0, 1))),
                ],
            )
            .pop()
            .unwrap()
        };
        let h1 = intern_tuple(&mk());
        // Same atoms pushed in a different order → same canonical tuple.
        let t2 =
            GeneralizedTuple::from_atoms(2, mk().atoms().iter().rev().copied().collect::<Vec<_>>());
        let h2 = intern_tuple(&t2);
        assert!(h1.ptr_eq(&h2));
    }
}
