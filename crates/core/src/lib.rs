//! # dco-core — dense-order constraint database core
//!
//! The foundation of a from-scratch implementation of *Dense-Order Constraint
//! Databases* (Grumbach & Su, PODS 1995). This crate provides:
//!
//! * exact rational arithmetic ([`rational::Rational`]);
//! * dense-order atomic constraints and their normal form ([`atom`]);
//! * generalized tuples — conjunctions with a complete satisfiability
//!   procedure, witness construction, and single-variable quantifier
//!   elimination for `Th(Q, <)` ([`tuple`]);
//! * generalized relations — finite unions of tuples with the closed-form
//!   constraint algebra (union/intersection/complement/projection) the
//!   paper's query languages compile to ([`relation`]);
//! * order-type cell decompositions giving canonical forms and decidable
//!   equivalence ([`cell`]);
//! * a canonical interval representation for the unary case ([`interval`]);
//! * order automorphisms of Q and the genericity machinery of Definition 3.1
//!   ([`automorphism`]);
//! * schemas and database instances ([`database`]);
//! * a parallel evaluation layer — scoped-thread data parallelism gated by
//!   an [`par::EvalConfig`] — and a memoized satisfiability cache ([`par`],
//!   [`cache`]);
//! * a runtime resource governor — deadlines, tuple/atom budgets,
//!   cooperative cancellation, panic containment, and a deterministic
//!   fault-injection harness for chaos testing ([`guard`]).
//!
//! Everything downstream — the FO, FO+, Datalog¬ and C-CALC evaluators, the
//! encodings, the spatial layer and the experiment harness — builds on these
//! types.
//!
//! ## Quick example
//!
//! ```
//! use dco_core::prelude::*;
//!
//! // The paper's triangle: x ≤ y ∧ x ≥ 0 ∧ y ≤ 10.
//! let triangle = GeneralizedRelation::from_raw(2, vec![
//!     RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
//!     RawAtom::new(Term::var(0), RawOp::Ge, Term::cst(rat(0, 1))),
//!     RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
//! ]);
//! assert!(triangle.contains_point(&[rat(1, 1), rat(2, 1)]));
//!
//! // ∃y: the shadow of the triangle on the x axis is [0, 10].
//! let shadow = triangle.project_out(Var(1));
//! assert!(shadow.contains_point(&[rat(10, 1), rat(0, 1)]));
//! assert!(!shadow.contains_point(&[rat(11, 1), rat(0, 1)]));
//! ```

#![warn(missing_docs)]

pub mod algebra;
pub mod atom;
pub mod automorphism;
pub mod cache;
pub mod cell;
pub mod database;
#[deny(clippy::unwrap_used)]
pub mod guard;
pub mod intern;
pub mod interval;
pub mod par;
pub mod rational;
pub mod relation;
pub mod sat;
pub mod tuple;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::atom::{Atom, CompOp, RawAtom, RawOp, Term, Var};
    pub use crate::automorphism::Automorphism;
    pub use crate::cache::{reset_sat_cache, sat_cache_stats, CacheStats, MemoCache};
    pub use crate::cell::{CanonicalForm, Cell, CellSpace};
    pub use crate::database::{Database, DatabaseError, Schema};
    pub use crate::guard::{
        run_guarded, BudgetKind, CancelToken, EvalError as GuardError,
        EvalErrorKind as GuardErrorKind, EvalGuard, GuardLimits, GuardStats, Guarded, ProbeSite,
    };
    pub use crate::intern::{intern_atom, intern_tuple, Interned, Interner};
    pub use crate::interval::{Bound, Interval, IntervalSet};
    pub use crate::par::{eval_config, set_eval_config, with_eval_config, EvalConfig};
    pub use crate::rational::{rat, Rational};
    pub use crate::relation::GeneralizedRelation;
    pub use crate::sat::{SatState, VarBox};
    pub use crate::tuple::GeneralizedTuple;
}
