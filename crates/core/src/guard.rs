//! Runtime resource governor: deadlines, budgets, cancellation, and panic
//! containment for every evaluation hot path.
//!
//! The static cost pass (`dco-analysis`) rejects queries whose *predicted*
//! cell count is absurd, but prediction is not a guarantee: dense-order QE
//! and inflationary fixpoints have instances whose intermediate DNFs blow
//! up combinatorially even when the final answer is small. A production
//! engine must degrade *gracefully* on such instances — return a typed
//! error with partial-progress statistics, never abort the process, never
//! wedge a thread, never leave a memo cache poisoned.
//!
//! The design is cooperative: an [`EvalGuard`] holds a deadline, tuple and
//! atom budgets, and a cancellation flag, and the algebra calls [`probe`]
//! at cheap, semantically idle points —
//!
//! | site | where |
//! |---|---|
//! | [`ProbeSite::DnfInsert`] | every disjunct insert into a [`crate::relation::GeneralizedRelation`] (union, intersect, complement distribution) |
//! | [`ProbeSite::QuantifierElim`] | each single-variable dense-order QE step ([`crate::tuple::GeneralizedTuple::eliminate`]) |
//! | [`ProbeSite::CellSplit`] | each cell produced by [`crate::cell::CellSpace::enumerate`] |
//! | [`ProbeSite::FourierMotzkin`] | each Fourier–Motzkin pivot in `dco-linear` |
//! | [`ProbeSite::FixpointStage`] | each stage boundary of the Datalog engines |
//!
//! When a probe finds a limit exceeded (or the cancel flag set) it records
//! the fault and unwinds with a private sentinel payload. The unwinding is
//! *contained*: [`run_guarded`] (used by every `try_*` entry point in
//! `dco-fo`, `dco-linear`, `dco-datalog` and `dco`) catches it at the
//! boundary and converts it into a typed [`EvalError`] carrying a
//! [`GuardStats`] snapshot of the work completed. Code that never installs
//! a guard never pays more than one thread-local flag read per probe and
//! keeps the seed behaviour bit for bit.
//!
//! Worker threads spawned by [`crate::par`] inherit the installing
//! thread's guard, so a budget is global to the evaluation, not per
//! thread; a fault tripped in one worker raises the shared cancel flag and
//! the sibling workers stop at their next probe.
//!
//! The [`faults`] submodule is a deterministic fault-injection harness:
//! a seeded [`faults::FaultPlan`] arms exactly one synthetic fault
//! (overflow, panic, delay, or cancellation) at the Nth matching probe
//! hit, which is how the chaos property suite drives every abort path
//! without randomness or timing dependence.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once, OnceLock};
use std::time::{Duration, Instant};

/// The classes of probe points threaded through the evaluation hot paths.
///
/// Used both for fault targeting (a [`faults::FaultPlan`] can restrict
/// itself to one site) and for attributing probe counts in [`GuardStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeSite {
    /// Disjunct insertion into a generalized relation's DNF.
    DnfInsert,
    /// A single-variable dense-order quantifier-elimination step.
    QuantifierElim,
    /// One cell emitted by order-type cell decomposition.
    CellSplit,
    /// One Fourier–Motzkin variable-elimination pivot.
    FourierMotzkin,
    /// One stage boundary of a Datalog fixpoint engine.
    FixpointStage,
    /// Mid-append in the store's write-ahead log: the record header is on
    /// disk but the payload/trailer is not. A fault here leaves a torn
    /// record for crash recovery to discard (`dco-store`).
    WalAppend,
    /// Immediately before the WAL durability point (`fsync`): the record
    /// bytes are complete but not yet forced to disk.
    WalFsync,
    /// Mid-write of a store snapshot file, before the atomic rename that
    /// publishes it. A fault here abandons the temporary file.
    SnapshotWrite,
    /// After a group-commit batch's records are fully written to the WAL
    /// but before the single batch fsync: the durability point for every
    /// committer waiting on the batch (`dco-store`).
    GroupCommitFsync,
    /// Between the per-shard generation swaps that publish a durable
    /// batch to readers. A fault here leaves a seq-prefix of the batch
    /// visible — never a torn interleaving (`dco-store`).
    ShardPublish,
}

impl ProbeSite {
    /// Index of this site in [`dco_obs::PROBE_SITES`] — the contract
    /// between the guard's probe fan-out and the tracing layer's
    /// per-site aggregates (a unit test pins the two orderings).
    pub fn obs_index(self) -> usize {
        match self {
            ProbeSite::DnfInsert => 0,
            ProbeSite::QuantifierElim => 1,
            ProbeSite::CellSplit => 2,
            ProbeSite::FourierMotzkin => 3,
            ProbeSite::FixpointStage => 4,
            ProbeSite::WalAppend => 5,
            ProbeSite::WalFsync => 6,
            ProbeSite::SnapshotWrite => 7,
            ProbeSite::GroupCommitFsync => 8,
            ProbeSite::ShardPublish => 9,
        }
    }
}

impl fmt::Display for ProbeSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProbeSite::DnfInsert => "dnf-insert",
            ProbeSite::QuantifierElim => "quantifier-elim",
            ProbeSite::CellSplit => "cell-split",
            ProbeSite::FourierMotzkin => "fourier-motzkin",
            ProbeSite::FixpointStage => "fixpoint-stage",
            ProbeSite::WalAppend => "wal-append",
            ProbeSite::WalFsync => "wal-fsync",
            ProbeSite::SnapshotWrite => "snapshot-write",
            ProbeSite::GroupCommitFsync => "group-commit-fsync",
            ProbeSite::ShardPublish => "shard-publish",
        };
        f.write_str(s)
    }
}

/// Which budget a [`EvalErrorKind::BudgetExceeded`] fault exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Generalized tuples (disjuncts) materialized.
    Tuples,
    /// Atoms (constraints) materialized.
    Atoms,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Tuples => f.write_str("tuple"),
            BudgetKind::Atoms => f.write_str("atom"),
        }
    }
}

/// The typed fault taxonomy of the guard layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalErrorKind {
    /// Rational arithmetic overflowed `i128` on the evaluation path.
    Overflow(&'static str),
    /// The guarded deadline elapsed before the evaluation finished.
    DeadlineExceeded {
        /// Wall time elapsed when the fault tripped, in milliseconds.
        elapsed_ms: u64,
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
    /// A materialization budget was exhausted.
    BudgetExceeded {
        /// Which budget.
        budget: BudgetKind,
        /// Its configured limit.
        limit: u64,
    },
    /// The evaluation was cancelled via a [`CancelToken`] (or an injected
    /// cancellation fault).
    Cancelled,
    /// A worker (or the evaluation itself) panicked with a non-guard
    /// payload, and the one-shot sequential retry panicked again.
    WorkerPanicked(String),
}

impl fmt::Display for EvalErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalErrorKind::Overflow(at) => write!(f, "arithmetic overflow: {at}"),
            EvalErrorKind::DeadlineExceeded {
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms} ms elapsed of {limit_ms} ms allowed"
            ),
            EvalErrorKind::BudgetExceeded { budget, limit } => {
                write!(f, "{budget} budget exceeded: limit {limit}")
            }
            EvalErrorKind::Cancelled => f.write_str("evaluation cancelled"),
            EvalErrorKind::WorkerPanicked(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

/// Partial-progress counters, snapshotted both on success and on fault.
///
/// Counters are process-wide per guarded evaluation (workers share the
/// installing thread's guard), updated with relaxed atomics: exact in
/// sequential runs, lower-bound-accurate under concurrency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Total probe hits across all sites.
    pub probes: u64,
    /// Disjuncts materialized (DNF inserts).
    pub tuples_materialized: u64,
    /// Atoms materialized across those disjuncts.
    pub atoms_materialized: u64,
    /// Fixpoint stages completed.
    pub stages_completed: u64,
    /// Parallel workers that panicked and were retried sequentially.
    pub worker_retries: u64,
    /// Wall time from guard installation to the snapshot, in milliseconds.
    pub elapsed_ms: u64,
}

/// A guard-layer failure: the typed fault plus how far evaluation got.
///
/// Memo caches are left *consistent* on this path: cache values are
/// computed before insertion and never mutated in place, so an aborted
/// evaluation can only have added correct entries (see the chaos suite's
/// cache-consistency property).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// What went wrong.
    pub kind: EvalErrorKind,
    /// Work completed before the fault.
    pub stats: GuardStats,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (after {} probes, {} tuples, {} stages, {} ms)",
            self.kind,
            self.stats.probes,
            self.stats.tuples_materialized,
            self.stats.stages_completed,
            self.stats.elapsed_ms
        )
    }
}

impl std::error::Error for EvalError {}

/// Resource limits for a guarded evaluation. `None` everywhere (the
/// default) means the guard only provides cancellation, statistics and
/// panic containment.
#[derive(Debug, Clone, Default)]
pub struct GuardLimits {
    /// Wall-clock deadline for the whole evaluation.
    pub deadline: Option<Duration>,
    /// Maximum disjuncts materialized across the evaluation.
    pub max_tuples: Option<u64>,
    /// Maximum atoms materialized across the evaluation.
    pub max_atoms: Option<u64>,
    /// Deterministic fault to inject (chaos testing only; `None` in
    /// production).
    pub fault_plan: Option<Arc<faults::FaultPlan>>,
}

impl GuardLimits {
    /// No limits: containment and statistics only.
    pub fn none() -> GuardLimits {
        GuardLimits::default()
    }

    /// Set the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> GuardLimits {
        self.deadline = Some(d);
        self
    }

    /// Set the materialized-tuple budget.
    pub fn with_max_tuples(mut self, n: u64) -> GuardLimits {
        self.max_tuples = Some(n);
        self
    }

    /// Set the materialized-atom budget.
    pub fn with_max_atoms(mut self, n: u64) -> GuardLimits {
        self.max_atoms = Some(n);
        self
    }

    /// Arm a deterministic fault (see [`faults`]).
    pub fn with_fault(mut self, plan: faults::FaultPlan) -> GuardLimits {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Intersect with another limit set: the result enforces *both* —
    /// the minimum of each pair of limits, with `None` meaning
    /// unbounded on that axis. This is how a server combines the
    /// client's requested deadline/budgets with its own caps: a client
    /// can only ever tighten what the server would have enforced. The
    /// fault plan is taken from `self` (fault injection is never
    /// client-requestable).
    pub fn tightened(self, other: &GuardLimits) -> GuardLimits {
        fn min_opt<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        GuardLimits {
            deadline: min_opt(self.deadline, other.deadline),
            max_tuples: min_opt(self.max_tuples, other.max_tuples),
            max_atoms: min_opt(self.max_atoms, other.max_atoms),
            fault_plan: self.fault_plan,
        }
    }
}

/// Shared state behind an [`EvalGuard`] / [`CancelToken`].
struct GuardShared {
    started: Instant,
    deadline: Option<Instant>,
    limits: GuardLimits,
    cancel: AtomicBool,
    /// First fault wins; later trips see it set and unwind quietly.
    tripped: OnceLock<EvalErrorKind>,
    probes: AtomicU64,
    tuples: AtomicU64,
    atoms: AtomicU64,
    stages: AtomicU64,
    retries: AtomicU64,
}

/// A live resource governor for one evaluation.
///
/// Cheap to clone (an `Arc`); workers spawned by [`crate::par`] share the
/// installing thread's guard, so budgets and cancellation are global to
/// the evaluation.
#[derive(Clone)]
pub struct EvalGuard {
    shared: Arc<GuardShared>,
}

impl fmt::Debug for EvalGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalGuard")
            .field("stats", &self.stats())
            .field("tripped", &self.shared.tripped.get())
            .finish()
    }
}

impl EvalGuard {
    /// Create a guard with the given limits; the deadline clock starts now.
    pub fn new(limits: GuardLimits) -> EvalGuard {
        let started = Instant::now();
        EvalGuard {
            shared: Arc::new(GuardShared {
                started,
                deadline: limits.deadline.map(|d| started + d),
                limits,
                cancel: AtomicBool::new(false),
                tripped: OnceLock::new(),
                probes: AtomicU64::new(0),
                tuples: AtomicU64::new(0),
                atoms: AtomicU64::new(0),
                stages: AtomicU64::new(0),
                retries: AtomicU64::new(0),
            }),
        }
    }

    /// A snapshot of the progress counters.
    pub fn stats(&self) -> GuardStats {
        let s = &self.shared;
        GuardStats {
            probes: s.probes.load(Ordering::Relaxed),
            tuples_materialized: s.tuples.load(Ordering::Relaxed),
            atoms_materialized: s.atoms.load(Ordering::Relaxed),
            stages_completed: s.stages.load(Ordering::Relaxed),
            worker_retries: s.retries.load(Ordering::Relaxed),
            elapsed_ms: s.started.elapsed().as_millis() as u64,
        }
    }

    /// A cancellation handle that can be sent to another thread.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            shared: Arc::downgrade(&self.shared),
        }
    }

    /// Request cooperative cancellation: the evaluation stops at its next
    /// probe with [`EvalErrorKind::Cancelled`].
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Release);
    }

    /// The fault recorded so far, if any.
    pub fn fault(&self) -> Option<EvalErrorKind> {
        self.shared.tripped.get().cloned()
    }
}

/// A clonable, `Send` handle that cancels a guarded evaluation from
/// outside (another thread, a timeout reactor, a request handler noticing
/// the client went away). Holding a token does not keep the evaluation's
/// state alive; cancelling a finished evaluation is a no-op.
#[derive(Clone)]
pub struct CancelToken {
    shared: std::sync::Weak<GuardShared>,
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CancelToken")
    }
}

impl CancelToken {
    /// Request cancellation; returns `false` if the evaluation is already
    /// gone.
    pub fn cancel(&self) -> bool {
        match self.shared.upgrade() {
            Some(s) => {
                s.cancel.store(true, Ordering::Release);
                true
            }
            None => false,
        }
    }
}

thread_local! {
    /// Fast-path flag mirroring `ACTIVE.is_some()` so an unguarded probe
    /// costs one `Cell` read and no `RefCell` bookkeeping.
    static GUARDED: Cell<bool> = const { Cell::new(false) };
    static ACTIVE: RefCell<Option<EvalGuard>> = const { RefCell::new(None) };
}

/// The guard active on this thread, if any. Used by [`crate::par`] to
/// propagate the guard into scoped workers.
pub fn current() -> Option<EvalGuard> {
    if !GUARDED.with(Cell::get) {
        return None;
    }
    ACTIVE.with(|a| a.borrow().clone())
}

/// Install `guard` (or clear with `None`) on this thread, returning the
/// previous value. Callers must restore the previous value — use
/// [`ScopedGuard`] unless you are the worker-spawn path.
fn swap_current(guard: Option<EvalGuard>) -> Option<EvalGuard> {
    GUARDED.with(|g| g.set(guard.is_some()));
    ACTIVE.with(|a| a.replace(guard))
}

/// RAII installation of a guard on the current thread.
pub struct ScopedGuard {
    prev: Option<EvalGuard>,
}

impl ScopedGuard {
    /// Install `guard` until the returned value is dropped (panic-safe).
    pub fn install(guard: EvalGuard) -> ScopedGuard {
        ScopedGuard {
            prev: swap_current(Some(guard)),
        }
    }
}

impl Drop for ScopedGuard {
    fn drop(&mut self) {
        swap_current(self.prev.take());
    }
}

/// The sentinel unwind payload used for guard aborts. Private to the
/// crate: [`run_guarded`] and the parallel layer are the only code that
/// inspects payloads, and the quiet panic hook suppresses its backtrace.
pub(crate) struct GuardAbort;

/// Suppress the default "thread panicked" stderr noise for the two
/// sentinel payloads the guard layer unwinds with; real panics keep the
/// previous hook's behaviour.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<GuardAbort>() || info.payload().is::<faults::InjectedPanic>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Record `kind` as the evaluation's fault (first trip wins), raise the
/// shared cancel flag so sibling workers stop at their next probe, and
/// unwind to the [`run_guarded`] boundary.
fn trip_and_abort(shared: &GuardShared, kind: EvalErrorKind) -> ! {
    let _ = shared.tripped.set(kind);
    shared.cancel.store(true, Ordering::Release);
    panic::panic_any(GuardAbort);
}

/// Install `guard` on a fresh worker thread. No restore is needed: the
/// worker's thread-locals die with it at the end of the scoped region.
pub(crate) fn install_for_worker(guard: Option<EvalGuard>) {
    if guard.is_some() {
        let _ = swap_current(guard);
    }
}

/// Record a worker-panic fault on the active guard, if any. Returns
/// whether a guard was active (so the caller knows the abort sentinel
/// will be understood at a boundary).
pub(crate) fn trip_worker_panic(message: String) -> bool {
    match current() {
        Some(g) => {
            let _ = g.shared.tripped.set(EvalErrorKind::WorkerPanicked(message));
            g.shared.cancel.store(true, Ordering::Release);
            true
        }
        None => false,
    }
}

/// Note a successful one-shot sequential retry of a panicked worker.
pub(crate) fn note_worker_retry() {
    if let Some(g) = current() {
        g.shared.retries.fetch_add(1, Ordering::Relaxed);
    }
}

/// A probe point: no-op when unguarded, otherwise count the hit, charge
/// the budgets, and check fault conditions (injection, cancellation,
/// deadline, budgets) in that order.
#[inline]
pub fn probe(site: ProbeSite) {
    probe_charge(site, 0, 0);
}

/// [`probe`] plus budget charges for `tuples` disjuncts and `atoms` atoms
/// materialized at this point.
#[inline]
pub fn probe_charge(site: ProbeSite, tuples: u64, atoms: u64) {
    if !GUARDED.with(Cell::get) {
        return;
    }
    probe_slow(site, tuples, atoms);
}

#[cold]
fn probe_slow(site: ProbeSite, tuples: u64, atoms: u64) {
    let Some(guard) = ACTIVE.with(|a| a.borrow().clone()) else {
        return;
    };
    let s = &guard.shared;
    s.probes.fetch_add(1, Ordering::Relaxed);
    let tuple_count = if tuples > 0 {
        s.tuples.fetch_add(tuples, Ordering::Relaxed) + tuples
    } else {
        s.tuples.load(Ordering::Relaxed)
    };
    let atom_count = if atoms > 0 {
        s.atoms.fetch_add(atoms, Ordering::Relaxed) + atoms
    } else {
        s.atoms.load(Ordering::Relaxed)
    };
    // Trace fan-out: charge the active query trace's per-site aggregates
    // (one thread-local read when no trace is active). Before the fault
    // checks on purpose — a probe that trips still shows in the trace.
    dco_obs::trace::probe_hit(site.obs_index(), tuples, atoms);
    // Deterministic fault injection first, so an armed fault fires even
    // when real limits would trip at the same probe.
    if let Some(plan) = &s.limits.fault_plan {
        faults::maybe_inject(plan, site, s);
    }
    if s.cancel.load(Ordering::Acquire) {
        trip_and_abort(s, EvalErrorKind::Cancelled);
    }
    if let Some(deadline) = s.deadline {
        let now = Instant::now();
        if now > deadline {
            trip_and_abort(
                s,
                EvalErrorKind::DeadlineExceeded {
                    elapsed_ms: (now - s.started).as_millis() as u64,
                    limit_ms: s.limits.deadline.map(|d| d.as_millis() as u64).unwrap_or(0),
                },
            );
        }
    }
    if let Some(limit) = s.limits.max_tuples {
        if tuple_count > limit {
            trip_and_abort(
                s,
                EvalErrorKind::BudgetExceeded {
                    budget: BudgetKind::Tuples,
                    limit,
                },
            );
        }
    }
    if let Some(limit) = s.limits.max_atoms {
        if atom_count > limit {
            trip_and_abort(
                s,
                EvalErrorKind::BudgetExceeded {
                    budget: BudgetKind::Atoms,
                    limit,
                },
            );
        }
    }
}

/// Mark a fixpoint stage as completed (called at stage boundaries, after
/// the stage's [`probe`]).
pub fn stage_completed() {
    if let Some(g) = current() {
        g.shared.stages.fetch_add(1, Ordering::Relaxed);
    }
}

/// Raise an arithmetic-overflow fault if a guard is active; otherwise
/// panic exactly like the seed's unchecked operators did. All `Rational`
/// operator impls route their overflow path through here, which is what
/// turns engine-path arithmetic overflow into a typed [`EvalError`] at
/// every `try_*` boundary.
pub fn raise_overflow(context: &'static str) -> ! {
    if let Some(g) = current() {
        trip_and_abort(&g.shared, EvalErrorKind::Overflow(context));
    }
    panic!("rational arithmetic overflow: {context}");
}

/// A guarded evaluation's successful outcome: the value plus the final
/// progress counters.
#[derive(Debug, Clone)]
pub struct Guarded<T> {
    /// The computed value, identical to an unguarded run's.
    pub value: T,
    /// Final progress counters.
    pub stats: GuardStats,
}

/// Run `f` under a fresh [`EvalGuard`] with `limits`, containing every
/// abort path:
///
/// * a tripped limit, cancellation, or overflow returns its typed
///   [`EvalError`];
/// * any other panic out of `f` (after the parallel layer's one-shot
///   retry) is caught and reported as [`EvalErrorKind::WorkerPanicked`];
/// * on success the result is structurally identical to an unguarded run
///   (probes observe, they never alter the computation).
///
/// Returns the guard's final statistics in both outcomes.
pub fn run_guarded<T>(limits: GuardLimits, f: impl FnOnce() -> T) -> Result<Guarded<T>, EvalError> {
    run_with_guard(EvalGuard::new(limits), f)
}

/// [`run_guarded`] with a caller-created guard, e.g. to hand out a
/// [`CancelToken`] before the evaluation starts.
pub fn run_with_guard<T>(guard: EvalGuard, f: impl FnOnce() -> T) -> Result<Guarded<T>, EvalError> {
    install_quiet_hook();
    let scoped = ScopedGuard::install(guard.clone());
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    drop(scoped);
    let stats = guard.stats();
    match outcome {
        Ok(value) => Ok(Guarded { value, stats }),
        Err(payload) => {
            let kind = if payload.is::<GuardAbort>() {
                // The fault was recorded before the sentinel unwind began;
                // Cancelled covers the only raceless gap (a sibling set the
                // cancel flag and this thread unwound before recording).
                guard.fault().unwrap_or(EvalErrorKind::Cancelled)
            } else {
                EvalErrorKind::WorkerPanicked(panic_message(payload.as_ref()))
            };
            Err(EvalError { kind, stats })
        }
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if payload.is::<faults::InjectedPanic>() {
        "injected panic (fault harness)".to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic, seeded fault injection for chaos testing.
///
/// A [`FaultPlan`] arms exactly one synthetic fault — overflow, panic,
/// delay, or cancellation — at the `at`-th probe hit matching its site
/// filter. Plans are one-shot: after firing, the evaluation continues (or
/// unwinds) exactly as a real fault of that class would, which lets the
/// chaos suite assert the invariant *typed error or exact result, never
/// an abort* at every probe point without wall-clock or scheduling
/// nondeterminism.
///
/// Injection sites compile away outside test builds: the check is gated
/// on `debug_assertions` (which `cargo test` enables) or the explicit
/// `fault-injection` feature for release-mode chaos runs.
pub mod faults {
    use super::*;

    /// The payload type of an injected panic. Distinct from the guard's
    /// abort sentinel on purpose: an injected panic must look like a
    /// *genuine* worker panic to exercise the containment and retry paths.
    pub(crate) struct InjectedPanic;

    /// The synthetic fault classes the harness can arm.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum InjectedFault {
        /// Behave as if rational arithmetic overflowed at the probe.
        Overflow,
        /// Panic with a non-guard payload (exercises containment/retry).
        Panic,
        /// Sleep for the given duration (exercises deadlines).
        Delay(Duration),
        /// Raise the cooperative cancel flag.
        Cancel,
    }

    /// A one-shot fault armed at the `at`-th matching probe hit.
    #[derive(Debug)]
    #[cfg_attr(
        not(any(debug_assertions, feature = "fault-injection")),
        allow(dead_code) // only `maybe_inject` reads these, and it is a stub here
    )]
    pub struct FaultPlan {
        site: Option<ProbeSite>,
        at: u64,
        fault: InjectedFault,
        hits: AtomicU64,
        fired: AtomicBool,
    }

    impl FaultPlan {
        /// Arm `fault` at the `at`-th probe hit (1-based) matching `site`
        /// (`None` = any site).
        pub fn new(site: Option<ProbeSite>, at: u64, fault: InjectedFault) -> FaultPlan {
            FaultPlan {
                site,
                at: at.max(1),
                fault,
                hits: AtomicU64::new(0),
                fired: AtomicBool::new(false),
            }
        }

        /// Whether the plan has fired.
        pub fn has_fired(&self) -> bool {
            self.fired.load(Ordering::Acquire)
        }
    }

    /// Whether injection sites are compiled into this build.
    pub fn injection_enabled() -> bool {
        cfg!(any(debug_assertions, feature = "fault-injection"))
    }

    #[cfg(any(debug_assertions, feature = "fault-injection"))]
    pub(super) fn maybe_inject(plan: &FaultPlan, site: ProbeSite, shared: &GuardShared) {
        if let Some(want) = plan.site {
            if want != site {
                return;
            }
        }
        if plan.fired.load(Ordering::Acquire) {
            return;
        }
        let hit = plan.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if hit != plan.at || plan.fired.swap(true, Ordering::AcqRel) {
            return;
        }
        match plan.fault {
            InjectedFault::Overflow => {
                trip_and_abort(shared, EvalErrorKind::Overflow("injected fault"));
            }
            InjectedFault::Panic => panic::panic_any(InjectedPanic),
            InjectedFault::Delay(d) => std::thread::sleep(d),
            InjectedFault::Cancel => shared.cancel.store(true, Ordering::Release),
        }
    }

    #[cfg(not(any(debug_assertions, feature = "fault-injection")))]
    pub(super) fn maybe_inject(_plan: &FaultPlan, _site: ProbeSite, _shared: &GuardShared) {}
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn unguarded_probes_are_noops() {
        probe(ProbeSite::DnfInsert);
        probe_charge(ProbeSite::DnfInsert, 10, 100);
        stage_completed();
        assert!(current().is_none());
    }

    /// Pins the contract between [`ProbeSite::obs_index`] and
    /// [`dco_obs::PROBE_SITES`]: every variant maps to a distinct,
    /// in-range index whose registered name matches the variant.
    #[test]
    fn obs_index_matches_probe_site_names() {
        let expected = [
            (ProbeSite::DnfInsert, "dnf_insert"),
            (ProbeSite::QuantifierElim, "quantifier_elim"),
            (ProbeSite::CellSplit, "cell_split"),
            (ProbeSite::FourierMotzkin, "fourier_motzkin"),
            (ProbeSite::FixpointStage, "fixpoint_stage"),
            (ProbeSite::WalAppend, "wal_append"),
            (ProbeSite::WalFsync, "wal_fsync"),
            (ProbeSite::SnapshotWrite, "snapshot_write"),
            (ProbeSite::GroupCommitFsync, "group_commit_fsync"),
            (ProbeSite::ShardPublish, "shard_publish"),
        ];
        assert_eq!(expected.len(), dco_obs::PROBE_SITES.len());
        let mut seen = [false; 10];
        for (site, name) in expected {
            let idx = site.obs_index();
            assert!(idx < dco_obs::PROBE_SITES.len(), "{name} out of range");
            assert!(!seen[idx], "duplicate obs index {idx}");
            seen[idx] = true;
            assert_eq!(dco_obs::PROBE_SITES[idx], name);
        }
    }

    #[test]
    fn guarded_run_counts_and_succeeds() {
        let out = run_guarded(GuardLimits::none(), || {
            for _ in 0..5 {
                probe_charge(ProbeSite::DnfInsert, 1, 3);
            }
            stage_completed();
            42
        })
        .unwrap();
        assert_eq!(out.value, 42);
        assert_eq!(out.stats.probes, 5);
        assert_eq!(out.stats.tuples_materialized, 5);
        assert_eq!(out.stats.atoms_materialized, 15);
        assert_eq!(out.stats.stages_completed, 1);
    }

    #[test]
    fn tuple_budget_trips_typed() {
        let err = run_guarded(GuardLimits::none().with_max_tuples(3), || {
            for _ in 0..10 {
                probe_charge(ProbeSite::DnfInsert, 1, 0);
            }
            unreachable!("budget must trip first")
        })
        .unwrap_err();
        assert_eq!(
            err.kind,
            EvalErrorKind::BudgetExceeded {
                budget: BudgetKind::Tuples,
                limit: 3
            }
        );
        assert_eq!(err.stats.tuples_materialized, 4);
    }

    #[test]
    fn deadline_trips_typed() {
        let err = run_guarded(
            GuardLimits::none().with_deadline(Duration::from_millis(5)),
            || loop {
                std::thread::sleep(Duration::from_millis(2));
                probe(ProbeSite::FixpointStage);
            },
        )
        .unwrap_err();
        assert!(matches!(err.kind, EvalErrorKind::DeadlineExceeded { .. }));
    }

    #[test]
    fn cancel_token_from_another_thread() {
        let guard = EvalGuard::new(GuardLimits::none());
        let token = guard.cancel_token();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            token.cancel()
        });
        let err = run_with_guard(guard, || loop {
            std::thread::sleep(Duration::from_millis(1));
            probe(ProbeSite::DnfInsert);
        })
        .unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Cancelled);
        assert!(handle.join().expect("cancel thread"));
    }

    #[test]
    fn foreign_panic_contained_as_worker_panicked() {
        let err = run_guarded(GuardLimits::none(), || {
            probe(ProbeSite::DnfInsert);
            panic!("boom at probe 1");
        })
        .unwrap_err();
        let EvalErrorKind::WorkerPanicked(msg) = err.kind else {
            panic!("expected WorkerPanicked, got {:?}", err.kind);
        };
        assert!(msg.contains("boom"));
    }

    #[test]
    fn guard_restored_after_failure() {
        assert!(current().is_none());
        let _ = run_guarded(GuardLimits::none().with_max_tuples(1), || {
            probe_charge(ProbeSite::DnfInsert, 5, 0);
        });
        assert!(current().is_none());
    }

    #[test]
    fn overflow_raise_is_typed_under_guard() {
        let err = run_guarded(GuardLimits::none(), || -> u32 {
            raise_overflow("test site")
        })
        .unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Overflow("test site"));
    }

    #[test]
    fn injected_fault_fires_once_at_nth_probe() {
        if !faults::injection_enabled() {
            return;
        }
        let plan = faults::FaultPlan::new(
            Some(ProbeSite::DnfInsert),
            3,
            faults::InjectedFault::Overflow,
        );
        let limits = GuardLimits::none().with_fault(plan);
        let plan_ref = limits.fault_plan.clone().expect("armed");
        let err = run_guarded(limits, || {
            for i in 0..10 {
                probe(ProbeSite::QuantifierElim); // wrong site: never fires
                probe(ProbeSite::DnfInsert);
                assert!(i < 2, "must fault at the 3rd DnfInsert probe");
            }
        })
        .unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Overflow("injected fault"));
        assert!(plan_ref.has_fired());
    }

    #[test]
    fn nested_guards_scope_correctly() {
        let outer = run_guarded(GuardLimits::none(), || {
            probe(ProbeSite::DnfInsert);
            let inner = run_guarded(GuardLimits::none().with_max_tuples(1), || {
                probe_charge(ProbeSite::DnfInsert, 2, 0);
            });
            assert!(inner.is_err());
            // Outer guard is re-installed after the inner boundary.
            probe(ProbeSite::DnfInsert);
            7
        })
        .unwrap();
        assert_eq!(outer.value, 7);
        assert_eq!(outer.stats.probes, 2);
    }

    #[test]
    fn tightened_takes_the_minimum_on_every_axis() {
        let server = GuardLimits::none()
            .with_deadline(Duration::from_millis(500))
            .with_max_tuples(1000);
        let client = GuardLimits::none()
            .with_deadline(Duration::from_millis(200))
            .with_max_atoms(64);
        let both = server.clone().tightened(&client);
        assert_eq!(both.deadline, Some(Duration::from_millis(200)));
        assert_eq!(both.max_tuples, Some(1000), "unset on one side: kept");
        assert_eq!(both.max_atoms, Some(64));
        // A client cannot loosen the server's limits.
        let loose = GuardLimits::none().with_deadline(Duration::from_secs(3600));
        assert_eq!(
            server.tightened(&loose).deadline,
            Some(Duration::from_millis(500))
        );
        assert!(GuardLimits::none()
            .tightened(&GuardLimits::none())
            .deadline
            .is_none());
    }
}
