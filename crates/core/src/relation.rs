//! Generalized relations: finite unions of generalized tuples.
//!
//! A *k-ary finitely representable relation* (a "generalized relation" in
//! \[KKR90\]) is a finite set of k-ary generalized tuples; it denotes the union
//! of their point sets — a quantifier-free DNF formula over dense-order
//! constraints. This module implements the closed-form relational algebra
//! the paper's query languages compile to: union, intersection, complement,
//! difference, column projection (`∃`, via dense-order QE), selection and
//! renaming. *Closure* — every operation returns another finitely
//! representable relation — is the property Theorem 3 of \[KKR90\] (recalled in
//! §4) rests on, and it holds constructively here.

use crate::atom::{Atom, RawAtom, Var};
use crate::guard::{probe_charge, ProbeSite};
use crate::par::{eval_config, par_map, par_map_when, should_parallelize};
use crate::rational::Rational;
use crate::tuple::GeneralizedTuple;

use std::collections::BTreeSet;
use std::fmt;

/// A finite union of satisfiable generalized tuples of a fixed arity.
///
/// Invariants: every stored tuple is satisfiable; no stored tuple is
/// syntactically equal to another. (Semantic overlap between tuples is
/// permitted — the denotation is the union.)
#[derive(Clone, PartialEq, Eq)]
pub struct GeneralizedRelation {
    arity: u32,
    tuples: Vec<GeneralizedTuple>,
}

/// How [`GeneralizedRelation::complement`] will evaluate, as decided by
/// [`GeneralizedRelation::complement_strategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComplementStrategy {
    /// Negation distribution with satisfiability and subsumption pruning.
    /// `bailout` is the intermediate width at which the pass abandons its
    /// work in favour of cell decomposition; `None` when the cell space is
    /// too large to enumerate, so distribution must run unbounded.
    Syntactic {
        /// Maximum intermediate disjunct count before the cell fallback.
        bailout: Option<usize>,
    },
}

impl GeneralizedRelation {
    /// The empty k-ary relation.
    pub fn empty(arity: u32) -> GeneralizedRelation {
        GeneralizedRelation {
            arity,
            tuples: Vec::new(),
        }
    }

    /// The full space `Q^k`.
    pub fn universe(arity: u32) -> GeneralizedRelation {
        GeneralizedRelation {
            arity,
            tuples: vec![GeneralizedTuple::top(arity)],
        }
    }

    /// Build from tuples, dropping unsatisfiable ones.
    pub fn from_tuples(
        arity: u32,
        tuples: impl IntoIterator<Item = GeneralizedTuple>,
    ) -> GeneralizedRelation {
        let mut r = GeneralizedRelation::empty(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Build from tuples *without* subsumption pruning: only unsatisfiable
    /// tuples and exact syntactic duplicates are dropped. The result denotes
    /// the same set as [`GeneralizedRelation::from_tuples`] but may carry
    /// redundant disjuncts — used as the reference representation when
    /// testing that pruning is semantics-preserving.
    pub fn from_tuples_unpruned(
        arity: u32,
        tuples: impl IntoIterator<Item = GeneralizedTuple>,
    ) -> GeneralizedRelation {
        let mut r = GeneralizedRelation::empty(arity);
        for t in tuples {
            assert_eq!(t.arity(), arity, "insert arity mismatch");
            if t.is_satisfiable() && !r.tuples.contains(&t) {
                r.tuples.push(t);
            }
        }
        r
    }

    /// Build a single-"row" relation from raw atoms (a conjunction; `≠`
    /// splits into several tuples).
    ///
    /// [`GeneralizedTuple::from_raw`] already decided satisfiability of
    /// each `≠`-split alternative, so the tuples go straight to
    /// [`GeneralizedRelation::insert_satisfiable`] — satisfiability is
    /// decided exactly once per tuple on this path.
    pub fn from_raw(arity: u32, raws: impl IntoIterator<Item = RawAtom>) -> GeneralizedRelation {
        let mut r = GeneralizedRelation::empty(arity);
        for t in GeneralizedTuple::from_raw(arity, raws) {
            r.insert_satisfiable(t);
        }
        r
    }

    /// A finite classical relation embedded as equality constraints.
    pub fn from_points(
        arity: u32,
        points: impl IntoIterator<Item = Vec<Rational>>,
    ) -> GeneralizedRelation {
        GeneralizedRelation::from_tuples(
            arity,
            points.into_iter().map(|p| {
                assert_eq!(p.len(), arity as usize, "point arity mismatch");
                GeneralizedTuple::point(&p)
            }),
        )
    }

    /// Number of columns.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// The generalized tuples (disjuncts).
    pub fn tuples(&self) -> &[GeneralizedTuple] {
        &self.tuples
    }

    /// Number of disjuncts in the representation.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation denotes the empty set.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total number of atoms across all tuples — the representation size the
    /// paper's "standard encoding" measures data complexity against.
    pub fn size(&self) -> usize {
        self.tuples.iter().map(|t| t.len().max(1)).sum()
    }

    /// Insert a tuple if satisfiable, pruning by syntactic subsumption.
    ///
    /// This is the single normalization point all construction paths go
    /// through: unsatisfiable tuples are dropped here (or were already
    /// dropped by the caller, which then uses
    /// [`GeneralizedRelation::insert_satisfiable`] directly).
    pub fn insert(&mut self, t: GeneralizedTuple) {
        assert_eq!(t.arity(), self.arity, "insert arity mismatch");
        if t.is_satisfiable() {
            self.insert_satisfiable(t);
        }
    }

    /// Insert a tuple already known satisfiable, pruning subsumed disjuncts
    /// in both directions: the new tuple is dropped if an existing disjunct
    /// syntactically subsumes it (its atoms are a subset of the new
    /// tuple's, so it denotes a superset), and existing disjuncts the new
    /// tuple subsumes are removed. Equal tuples subsume each other, so this
    /// also deduplicates. Only the linear-time syntactic check is used —
    /// semantic subsumption stays in [`GeneralizedRelation::simplify`],
    /// where its cost is paid once instead of per insert.
    pub fn insert_satisfiable(&mut self, t: GeneralizedTuple) {
        debug_assert_eq!(t.arity(), self.arity, "insert arity mismatch");
        // Guard probe: every DNF insert is a materialization step, charged
        // against the tuple/atom budgets whether or not subsumption keeps it.
        probe_charge(ProbeSite::DnfInsert, 1, t.len() as u64);
        if self.tuples.iter().any(|u| u.subsumes_syntactic(&t)) {
            return;
        }
        self.tuples.retain(|u| !t.subsumes_syntactic(u));
        self.tuples.push(t);
    }

    /// Membership of a concrete point.
    pub fn contains_point(&self, point: &[Rational]) -> bool {
        self.tuples.iter().any(|t| t.contains_point(point))
    }

    /// Some point in the relation, if nonempty.
    pub fn witness(&self) -> Option<Vec<Rational>> {
        self.tuples.iter().find_map(|t| t.witness())
    }

    /// If every disjunct is a classical point tuple, the finite list of
    /// points (the "equality-constraint" fragment — finite relational
    /// databases embedded as in §2 of the paper).
    pub fn as_points(&self) -> Option<Vec<Vec<Rational>>> {
        self.tuples.iter().map(|t| t.as_point()).collect()
    }

    /// All constants mentioned in the representation.
    pub fn constants(&self) -> BTreeSet<Rational> {
        self.tuples.iter().flat_map(|t| t.constants()).collect()
    }

    /// Set union.
    pub fn union(&self, other: &GeneralizedRelation) -> GeneralizedRelation {
        assert_eq!(self.arity, other.arity, "union arity mismatch");
        let mut r = self.clone();
        for t in &other.tuples {
            r.insert(t.clone());
        }
        r
    }

    /// Set intersection (pairwise conjunction of disjuncts).
    ///
    /// The conjoin-and-decide work over all tuple pairs runs in parallel
    /// when the pair count clears the configured threshold; the subsumption
    /// merge is sequential and order-preserving, so the result is identical
    /// to the sequential one.
    pub fn intersect(&self, other: &GeneralizedRelation) -> GeneralizedRelation {
        assert_eq!(self.arity, other.arity, "intersect arity mismatch");
        let prune = eval_config().prune_boxes;
        let pairs = self.tuples.len().saturating_mul(other.tuples.len());
        let chunks = par_map_when(should_parallelize(pairs), &self.tuples, |a| {
            other
                .tuples
                .iter()
                // Bounding-box pre-filter: pairs with provably disjoint
                // boxes conjoin to an unsatisfiable tuple, which the
                // filter below would discard anyway — skipping them here
                // changes nothing structurally, it only avoids the work.
                .filter(|b| !prune || !a.box_disjoint(b))
                .map(|b| a.conjoin(b))
                .filter(|t| t.is_satisfiable())
                .collect::<Vec<_>>()
        });
        let mut r = GeneralizedRelation::empty(self.arity);
        for t in chunks.into_iter().flatten() {
            r.insert_satisfiable(t);
        }
        r
    }

    /// Complement with respect to `Q^k`.
    ///
    /// Two strategies (see [`GeneralizedRelation::complement_strategy`]):
    ///
    /// * **syntactic** — incremental distribution of the negated DNF
    ///   (`¬(t₁ ∨ … ∨ tₙ) = ¬t₁ ∧ … ∧ ¬tₙ`) with unsatisfiability and
    ///   subsumption pruning; compact output, but worst-case exponential in
    ///   the number of disjuncts (e.g. complements of large finite point
    ///   sets);
    /// * **cell-based** — enumerate the order-type cells over the
    ///   relation's constants and keep the non-members; linear in the cell
    ///   count, which is polynomial for fixed arity.
    ///
    /// Static estimates of the syntactic width are wildly pessimistic
    /// (subsumption pruning usually collapses the distribution), so rather
    /// than choosing up front from the estimate, the syntactic pass runs
    /// first with a *bailout budget* derived from the cell count: if its
    /// intermediate width ever exceeds the budget — the genuinely
    /// exponential cases, like complements of large point sets — it
    /// abandons the partial work and the cell path takes over. When the
    /// cell space itself is too large to enumerate, the syntactic pass
    /// runs unbounded (it is the only option).
    pub fn complement(&self) -> GeneralizedRelation {
        match self.complement_strategy() {
            ComplementStrategy::Syntactic { bailout } => {
                match self.complement_syntactic_bounded(bailout) {
                    Some(r) => r,
                    None => {
                        let space = crate::cell::CellSpace::for_relations(self.arity, [self]);
                        space.complement(self)
                    }
                }
            }
        }
    }

    /// The strategy [`GeneralizedRelation::complement`] will use, decided
    /// from the cell-count estimate `(2m+1)^k · fubini(k)` (`m` constants,
    /// arity `k`). Exposed so the choice itself is testable.
    pub fn complement_strategy(&self) -> ComplementStrategy {
        const CELL_LIMIT: usize = 50_000;
        let m = self.constants().len();
        let k = self.arity as usize;
        let cells_estimate = (2 * m + 1)
            .checked_pow(self.arity)
            .and_then(|c| crate::cell::fubini(k).and_then(|f| c.checked_mul(f)));
        match cells_estimate {
            Some(cells) if cells <= CELL_LIMIT => ComplementStrategy::Syntactic {
                // The cell path would produce at most `cells` disjuncts; a
                // syntactic intermediate wider than that (with slack) is
                // evidence of genuine blowup, not pruning lag.
                bailout: Some(cells.max(256)),
            },
            _ => ComplementStrategy::Syntactic { bailout: None },
        }
    }

    /// The syntactic complement (see [`GeneralizedRelation::complement`]).
    pub fn complement_syntactic(&self) -> GeneralizedRelation {
        self.complement_syntactic_bounded(None)
            .expect("unbounded syntactic complement cannot bail out")
    }

    /// Syntactic complement with an optional budget: returns `None` as soon
    /// as the intermediate disjunct count exceeds `bailout`, or the
    /// *cumulative projected work* — candidates examined times the width of
    /// the subsumption-pruning scan each must pass — exceeds a multiple of
    /// it, signalling the caller to fall back to cell decomposition. The
    /// width check alone is not enough: on dense many-constant relations
    /// the distribution can stay narrow (subsumption pruning collapses it)
    /// while a single step still performs orders of magnitude more
    /// subsumption and satisfiability work than the cell path would spend
    /// enumerating cells — so the cost check runs *before* each step, on
    /// its projection, not after the damage is done.
    fn complement_syntactic_bounded(&self, bailout: Option<usize>) -> Option<GeneralizedRelation> {
        let mut cost_seen: usize = 0;
        let mut acc: Vec<GeneralizedTuple> = vec![GeneralizedTuple::top(self.arity)];
        for t in &self.tuples {
            if t.is_empty() {
                // ¬⊤ = ⊥
                return Some(GeneralizedRelation::empty(self.arity));
            }
            // ¬t as a list of single-atom alternatives.
            let mut alts: Vec<Atom> = Vec::new();
            for a in t.atoms() {
                for alt in a.negate() {
                    // Each alternative from Atom::negate is a (possibly
                    // empty) conjunction; for {<,≤,=} negation it is always
                    // a single atom or trivially true/false.
                    match alt.len() {
                        0 => {
                            // trivially true alternative: ¬t is ⊤, this
                            // tuple excludes nothing new... actually a true
                            // alternative makes the whole disjunct true;
                            // cannot happen for satisfiable normalized t.
                            unreachable!("negation of a normalized atom is never trivially true");
                        }
                        1 => alts.push(alt[0]),
                        _ => unreachable!("negation of a normalized atom is at most one atom"),
                    }
                }
            }
            // Distribute in parallel (satisfiability filter per candidate),
            // then merge sequentially in the same candidate order as the
            // sequential nested loop — the result is order-identical.
            let work = acc.len().saturating_mul(alts.len());
            if let Some(limit) = bailout {
                // Projected step cost: `work` candidates, each scanned
                // against up to `acc.len()` kept disjuncts for subsumption.
                // Two units of that per would-be cell before the cell path
                // is declared cheaper — roughly equal-cost, since a cell
                // costs a membership scan of the whole relation while a
                // candidate costs one subsumption scan of the accumulator.
                cost_seen = cost_seen.saturating_add(work.saturating_mul(acc.len()));
                if cost_seen > limit.saturating_mul(2) {
                    return None;
                }
            }
            let sat_cands = par_map_when(should_parallelize(work), &acc, |partial| {
                alts.iter()
                    .filter_map(|alt| {
                        let mut cand = partial.clone();
                        cand.push(*alt);
                        cand.is_satisfiable().then_some(cand)
                    })
                    .collect::<Vec<_>>()
            });
            let mut next: Vec<GeneralizedTuple> = Vec::new();
            for cand in sat_cands.into_iter().flatten() {
                // Guard probe: the distribution's own merge loop bypasses
                // `insert_satisfiable`, so it charges the budgets itself.
                probe_charge(ProbeSite::DnfInsert, 1, cand.len() as u64);
                // Subsumption pruning within `next`.
                if next.iter().any(|u| u.subsumes(&cand)) {
                    continue;
                }
                next.retain(|u| !cand.subsumes(u));
                next.push(cand);
            }
            acc = next;
            if acc.is_empty() {
                return Some(GeneralizedRelation::empty(self.arity));
            }
            if let Some(limit) = bailout {
                if acc.len() > limit {
                    return None;
                }
            }
        }
        Some(GeneralizedRelation {
            arity: self.arity,
            tuples: acc,
        })
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &GeneralizedRelation) -> GeneralizedRelation {
        self.intersect(&other.complement())
    }

    /// Existential projection of one column: `∃x_v. self`, still expressed
    /// over the same arity (the eliminated column becomes unconstrained).
    /// `∃` distributes over `∨`, so each tuple is eliminated independently —
    /// this is the closed-form bottom-up evaluation step of \[KKR90\].
    pub fn project_out(&self, v: Var) -> GeneralizedRelation {
        let eliminated = par_map(&self.tuples, |t| {
            t.eliminate(v).filter(|e| e.is_satisfiable())
        });
        let mut r = GeneralizedRelation::empty(self.arity);
        for e in eliminated.into_iter().flatten() {
            r.insert_satisfiable(e);
        }
        r
    }

    /// Selection: conjoin a raw atom (may split on `≠`).
    pub fn select(&self, atom: RawAtom) -> GeneralizedRelation {
        let cond = GeneralizedRelation::from_raw(self.arity, [atom]);
        self.intersect(&cond)
    }

    /// Apply an injective column renaming into a (possibly larger) arity.
    pub fn rename(&self, new_arity: u32, f: impl Fn(Var) -> Var + Copy) -> GeneralizedRelation {
        GeneralizedRelation::from_tuples(
            new_arity,
            self.tuples.iter().map(|t| t.rename(new_arity, f)),
        )
    }

    /// Widen to a larger arity; new columns are unconstrained
    /// (cylindrification).
    pub fn widen(&self, new_arity: u32) -> GeneralizedRelation {
        GeneralizedRelation {
            arity: new_arity,
            tuples: self.tuples.iter().map(|t| t.widen(new_arity)).collect(),
        }
    }

    /// Drop trailing unconstrained columns down to `new_arity`. Panics if a
    /// dropped column is still mentioned.
    pub fn narrow(&self, new_arity: u32) -> GeneralizedRelation {
        assert!(new_arity <= self.arity);
        for t in &self.tuples {
            for v in t.mentioned_vars() {
                assert!(
                    v.0 < new_arity,
                    "narrow would drop constrained column {}",
                    v.0
                );
            }
        }
        GeneralizedRelation::from_tuples(
            new_arity,
            self.tuples
                .iter()
                .map(|t| GeneralizedTuple::from_atoms(new_arity, t.atoms().iter().copied())),
        )
    }

    /// Cartesian product: the result has arity `self.arity + other.arity`,
    /// with `other`'s columns shifted up.
    pub fn product(&self, other: &GeneralizedRelation) -> GeneralizedRelation {
        let arity = self.arity + other.arity;
        let shifted = other.rename(arity, |v| Var(v.0 + self.arity));
        self.widen(arity).intersect(&shifted)
    }

    /// Inclusion test `self ⊆ other`.
    ///
    /// Fast path first: any disjunct of `self` subsumed by a single
    /// disjunct of `other` is certainly included; only the leftover
    /// disjuncts (which could still be covered by a *union* of `other`'s
    /// disjuncts) fall back to the complement-based refutation
    /// `leftover ∩ ¬other = ∅`. For the common case where each disjunct
    /// has a single covering disjunct this skips the complement entirely.
    pub fn is_subset(&self, other: &GeneralizedRelation) -> bool {
        let covered = par_map(&self.tuples, |t| other.tuples.iter().any(|u| u.subsumes(t)));
        let leftover: Vec<GeneralizedTuple> = self
            .tuples
            .iter()
            .zip(&covered)
            .filter(|&(_, c)| !c)
            .map(|(t, _)| t.clone())
            .collect();
        if leftover.is_empty() {
            return true;
        }
        let rest = GeneralizedRelation {
            arity: self.arity,
            tuples: leftover,
        };
        rest.difference(other).is_empty()
    }

    /// Semantic equivalence of the denoted point sets.
    pub fn equivalent(&self, other: &GeneralizedRelation) -> bool {
        self.is_subset(other) && other.is_subset(self)
    }

    /// Simplify the representation: minimize each tuple (in parallel — each
    /// minimization is a batch of independent entailment refutations) and
    /// drop disjuncts subsumed by other disjuncts. The stable sort and the
    /// sequential kept-loop make the output deterministic regardless of
    /// thread count.
    pub fn simplify(&self) -> GeneralizedRelation {
        let work: usize = self.tuples.iter().map(|t| t.len()).sum();
        let mut tuples: Vec<GeneralizedTuple> =
            par_map_when(should_parallelize(work), &self.tuples, |t| t.simplify());
        tuples.sort_by_key(|t| t.len());
        let mut kept: Vec<GeneralizedTuple> = Vec::new();
        for t in tuples {
            if !kept.iter().any(|k| k.subsumes(&t)) {
                kept.push(t);
            }
        }
        GeneralizedRelation {
            arity: self.arity,
            tuples: kept,
        }
    }

    /// Map all constants through a strictly monotone function (an order
    /// automorphism of Q); returns the image relation.
    pub fn map_consts(&self, f: &impl Fn(&Rational) -> Rational) -> GeneralizedRelation {
        GeneralizedRelation::from_tuples(self.arity, self.tuples.iter().map(|t| t.map_consts(f)))
    }
}

impl fmt::Debug for GeneralizedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tuples.is_empty() {
            return write!(f, "⊥/{}", self.arity);
        }
        let parts: Vec<String> = self.tuples.iter().map(|t| format!("({})", t)).collect();
        write!(f, "{}", parts.join(" | "))
    }
}

impl fmt::Display for GeneralizedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{RawOp, Term};
    use crate::rational::rat;

    fn v(i: u32) -> Term {
        Term::var(i)
    }

    fn c(n: i64) -> Term {
        Term::cst(rat(n as i128, 1))
    }

    fn raw(l: impl Into<Term>, op: RawOp, r: impl Into<Term>) -> RawAtom {
        RawAtom::new(l, op, r)
    }

    fn interval(lo: i64, hi: i64) -> GeneralizedRelation {
        GeneralizedRelation::from_raw(
            1,
            vec![raw(c(lo), RawOp::Le, v(0)), raw(v(0), RawOp::Le, c(hi))],
        )
    }

    #[test]
    fn empty_and_universe() {
        assert!(GeneralizedRelation::empty(2).is_empty());
        assert!(GeneralizedRelation::universe(2).contains_point(&[rat(1, 1), rat(-7, 2)]));
        assert!(GeneralizedRelation::universe(0).contains_point(&[]));
    }

    #[test]
    fn union_and_intersect() {
        let a = interval(0, 10);
        let b = interval(5, 20);
        let u = a.union(&b);
        assert!(u.contains_point(&[rat(1, 1)]));
        assert!(u.contains_point(&[rat(15, 1)]));
        assert!(!u.contains_point(&[rat(25, 1)]));
        let i = a.intersect(&b);
        assert!(i.contains_point(&[rat(7, 1)]));
        assert!(!i.contains_point(&[rat(1, 1)]));
        assert!(!i.contains_point(&[rat(15, 1)]));
    }

    #[test]
    fn disjoint_intersection_is_empty() {
        let a = interval(0, 1);
        let b = interval(5, 6);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn complement_of_interval() {
        let a = interval(0, 10);
        let comp = a.complement();
        assert!(!comp.contains_point(&[rat(5, 1)]));
        assert!(comp.contains_point(&[rat(-1, 1)]));
        assert!(comp.contains_point(&[rat(11, 1)]));
        assert!(!comp.contains_point(&[rat(0, 1)]));
        assert!(!comp.contains_point(&[rat(10, 1)]));
        // Complement twice is the original set.
        assert!(comp.complement().equivalent(&a));
    }

    #[test]
    fn complement_of_empty_and_universe() {
        assert!(GeneralizedRelation::empty(1)
            .complement()
            .equivalent(&GeneralizedRelation::universe(1)));
        assert!(GeneralizedRelation::universe(1).complement().is_empty());
    }

    #[test]
    fn complement_of_union() {
        // ¬([0,1] ∪ [2,3]) — three open gaps
        let r = interval(0, 1).union(&interval(2, 3));
        let comp = r.complement();
        assert!(comp.contains_point(&[rat(3, 2)]));
        assert!(comp.contains_point(&[rat(-1, 1)]));
        assert!(comp.contains_point(&[rat(4, 1)]));
        assert!(!comp.contains_point(&[rat(1, 2)]));
        assert!(!comp.contains_point(&[rat(5, 2)]));
        assert!(comp.complement().equivalent(&r));
    }

    #[test]
    fn difference() {
        let d = interval(0, 10).difference(&interval(3, 5));
        assert!(d.contains_point(&[rat(1, 1)]));
        assert!(d.contains_point(&[rat(7, 1)]));
        assert!(!d.contains_point(&[rat(4, 1)]));
        assert!(!d.contains_point(&[rat(3, 1)]));
    }

    #[test]
    fn projection_shadow() {
        // R = triangle 0 <= x <= y <= 10; ∃y.R = [0,10] on x
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                raw(c(0), RawOp::Le, v(0)),
                raw(v(0), RawOp::Le, v(1)),
                raw(v(1), RawOp::Le, c(10)),
            ],
        );
        let shadow = tri.project_out(Var(1));
        assert!(shadow.contains_point(&[rat(5, 1), rat(999, 1)]));
        assert!(!shadow.contains_point(&[rat(11, 1), rat(0, 1)]));
        assert!(!shadow.contains_point(&[rat(-1, 1), rat(0, 1)]));
    }

    #[test]
    fn inclusion_and_equivalence() {
        let a = interval(0, 10);
        let b = interval(0, 20);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        // Syntactically different, semantically equal:
        let c1 = interval(0, 10).union(&interval(5, 20));
        let c2 = interval(0, 20);
        assert!(c1.equivalent(&c2));
    }

    #[test]
    fn select_splits_on_ne() {
        let r = GeneralizedRelation::universe(1).select(raw(v(0), RawOp::Ne, c(0)));
        assert!(r.contains_point(&[rat(1, 1)]));
        assert!(r.contains_point(&[rat(-1, 1)]));
        assert!(!r.contains_point(&[rat(0, 1)]));
    }

    #[test]
    fn product_and_rename() {
        let a = interval(0, 1);
        let b = interval(5, 6);
        let p = a.product(&b);
        assert_eq!(p.arity(), 2);
        assert!(p.contains_point(&[rat(1, 2), rat(11, 2)]));
        assert!(!p.contains_point(&[rat(11, 2), rat(1, 2)]));
        // swap columns
        let swapped = p.rename(2, |v| Var(1 - v.0));
        assert!(swapped.contains_point(&[rat(11, 2), rat(1, 2)]));
    }

    #[test]
    fn from_points_classical_relation() {
        let r = GeneralizedRelation::from_points(
            2,
            vec![vec![rat(1, 1), rat(2, 1)], vec![rat(3, 1), rat(4, 1)]],
        );
        assert!(r.contains_point(&[rat(1, 1), rat(2, 1)]));
        assert!(!r.contains_point(&[rat(1, 1), rat(4, 1)]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn simplify_drops_subsumed() {
        let r = interval(0, 10).union(&interval(2, 3));
        let s = r.simplify();
        assert_eq!(s.len(), 1);
        assert!(s.equivalent(&interval(0, 10)));
    }

    #[test]
    fn narrow_after_projection() {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![raw(c(0), RawOp::Le, v(0)), raw(v(0), RawOp::Le, v(1))],
        );
        let shadow = tri.project_out(Var(1)).narrow(1);
        assert_eq!(shadow.arity(), 1);
        assert!(shadow.contains_point(&[rat(5, 1)]));
        assert!(!shadow.contains_point(&[rat(-1, 1)]));
    }

    #[test]
    fn map_consts_automorphism_image() {
        let a = interval(0, 10);
        // automorphism x ↦ 2x
        let img = a.map_consts(&|r: &Rational| r * &rat(2, 1));
        assert!(img.contains_point(&[rat(20, 1)]));
        assert!(!img.contains_point(&[rat(21, 1)]));
    }

    #[test]
    fn arity_5_strategy_uses_extended_fubini() {
        // Pure variable-order relation of arity 5: no constants, so the
        // cell estimate is fubini(5) = 541 — small enough to enumerate.
        // The seed's lookup table stopped at arity 4 and saturated to
        // usize::MAX here, wrongly forcing the unbounded syntactic path.
        let r = GeneralizedRelation::from_raw(
            5,
            vec![
                raw(v(0), RawOp::Lt, v(1)),
                raw(v(1), RawOp::Lt, v(2)),
                raw(v(2), RawOp::Lt, v(3)),
                raw(v(3), RawOp::Lt, v(4)),
            ],
        );
        match r.complement_strategy() {
            ComplementStrategy::Syntactic { bailout: Some(b) } => {
                assert!((541..=50_000).contains(&b), "budget {b} out of range")
            }
            s => panic!("expected cell-bounded syntactic strategy, got {s:?}"),
        }
        let comp = r.complement();
        assert!(comp.contains_point(&[rat(4, 1), rat(3, 1), rat(2, 1), rat(1, 1), rat(0, 1)]));
        assert!(!comp.contains_point(&[rat(0, 1), rat(1, 1), rat(2, 1), rat(3, 1), rat(4, 1)]));
    }

    #[test]
    fn point_set_complement_bails_out_to_cells() {
        // The complement of a finite point set is the classic syntactic
        // blowup: distribution doubles per point and pruning cannot help.
        // The bailout budget must kick in and hand over to the cell path,
        // still producing a correct complement.
        let pts: Vec<Vec<Rational>> = (0..8)
            .map(|i| vec![rat(3 * i, 1), rat(3 * i + 1, 1)])
            .collect();
        let r = GeneralizedRelation::from_points(2, pts);
        let comp = r.complement();
        assert!(comp.contains_point(&[rat(1, 1), rat(1, 1)]));
        assert!(!comp.contains_point(&[rat(0, 1), rat(1, 1)]));
        assert!(!comp.contains_point(&[rat(21, 1), rat(22, 1)]));
    }

    #[test]
    fn complement_binary_halfplane() {
        let lt = GeneralizedRelation::from_raw(2, vec![raw(v(0), RawOp::Lt, v(1))]);
        let comp = lt.complement();
        assert!(comp.contains_point(&[rat(1, 1), rat(1, 1)]));
        assert!(comp.contains_point(&[rat(2, 1), rat(1, 1)]));
        assert!(!comp.contains_point(&[rat(1, 1), rat(2, 1)]));
        assert!(comp.complement().equivalent(&lt));
    }
}
