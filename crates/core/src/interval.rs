//! One-dimensional canonical interval sets.
//!
//! Unary dense-order relations are exactly finite unions of points and open
//! intervals with rational (or infinite) endpoints — the paper's §2 notes the
//! motivating special case that planar dense-order relations decompose into
//! rectangles "representable by four constants along with a flag". The 1-D
//! analogue here is the canonical sorted list of disjoint, non-adjacent
//! intervals, which gives O(n log n) normalization and linear-time boolean
//! operations — a fast path the generic DNF machinery can't match.

use crate::atom::{CompOp, RawAtom, RawOp, Term, Var};
use crate::rational::Rational;
use crate::relation::GeneralizedRelation;
use crate::tuple::GeneralizedTuple;

use std::fmt;

/// An endpoint of an interval: −∞, a rational (open or closed), or +∞.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bound {
    /// Unbounded below/above.
    Unbounded,
    /// Endpoint excluded.
    Open(Rational),
    /// Endpoint included.
    Closed(Rational),
}

/// A nonempty interval of Q.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Lower bound.
    pub lo: Bound,
    /// Upper bound.
    pub hi: Bound,
}

impl Interval {
    /// The whole line.
    pub fn all() -> Interval {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// A single point.
    pub fn point(p: Rational) -> Interval {
        Interval {
            lo: Bound::Closed(p),
            hi: Bound::Closed(p),
        }
    }

    /// A closed interval `[a, b]`; panics if `a > b`.
    pub fn closed(a: Rational, b: Rational) -> Interval {
        assert!(a <= b, "empty closed interval");
        Interval {
            lo: Bound::Closed(a),
            hi: Bound::Closed(b),
        }
    }

    /// An open interval `(a, b)`; panics if `a >= b`.
    pub fn open(a: Rational, b: Rational) -> Interval {
        assert!(a < b, "empty open interval");
        Interval {
            lo: Bound::Open(a),
            hi: Bound::Open(b),
        }
    }

    /// Is the interval nonempty? (Constructors enforce this, but boolean
    /// operations build candidates that need checking.)
    fn valid(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
            (Bound::Closed(a), Bound::Closed(b)) => a <= b,
            (Bound::Closed(a), Bound::Open(b))
            | (Bound::Open(a), Bound::Closed(b))
            | (Bound::Open(a), Bound::Open(b)) => a < b,
        }
    }

    /// Membership test.
    pub fn contains(&self, x: &Rational) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Open(a) => a < x,
            Bound::Closed(a) => a <= x,
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Open(b) => x < b,
            Bound::Closed(b) => x <= b,
        };
        lo_ok && hi_ok
    }

    /// Key for sorting intervals by lower endpoint.
    fn lo_key(&self) -> (i8, Rational, i8) {
        match self.lo {
            Bound::Unbounded => (-1, Rational::ZERO, 0),
            Bound::Closed(a) => (0, a, 0),
            Bound::Open(a) => (0, a, 1),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.lo, &self.hi) {
            (Bound::Closed(a), Bound::Closed(b)) if a == b => write!(f, "{{{}}}", a),
            _ => {
                match &self.lo {
                    Bound::Unbounded => write!(f, "(-inf, ")?,
                    Bound::Open(a) => write!(f, "({}, ", a)?,
                    Bound::Closed(a) => write!(f, "[{}, ", a)?,
                }
                match &self.hi {
                    Bound::Unbounded => write!(f, "inf)"),
                    Bound::Open(b) => write!(f, "{})", b),
                    Bound::Closed(b) => write!(f, "{}]", b),
                }
            }
        }
    }
}

/// A canonical finite union of intervals: sorted, disjoint, and non-mergeable
/// (no two stored intervals are adjacent or overlapping).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> IntervalSet {
        IntervalSet {
            intervals: Vec::new(),
        }
    }

    /// The whole line.
    pub fn all() -> IntervalSet {
        IntervalSet {
            intervals: vec![Interval::all()],
        }
    }

    /// Build from arbitrary intervals, normalizing.
    pub fn from_intervals(intervals: impl IntoIterator<Item = Interval>) -> IntervalSet {
        let mut v: Vec<Interval> = intervals.into_iter().filter(|i| i.valid()).collect();
        v.sort_by_key(|a| a.lo_key());
        let mut out: Vec<Interval> = Vec::new();
        for iv in v {
            match out.last_mut() {
                Some(last) if touches_or_overlaps(last, &iv) => {
                    *last = hull(last, &iv);
                }
                _ => out.push(iv),
            }
        }
        IntervalSet { intervals: out }
    }

    /// The canonical intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Membership.
    pub fn contains(&self, x: &Rational) -> bool {
        self.intervals.iter().any(|i| i.contains(x))
    }

    /// Union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.intervals.iter().chain(other.intervals.iter()).copied())
    }

    /// Complement.
    pub fn complement(&self) -> IntervalSet {
        let mut out = Vec::new();
        let mut lo = Bound::Unbounded;
        for iv in &self.intervals {
            // gap before iv
            let hi = match iv.lo {
                Bound::Unbounded => None,
                Bound::Open(a) => Some(Bound::Closed(a)),
                Bound::Closed(a) => Some(Bound::Open(a)),
            };
            if let Some(hi) = hi {
                let gap = Interval { lo, hi };
                if gap.valid() {
                    out.push(gap);
                }
            }
            lo = match iv.hi {
                Bound::Unbounded => return IntervalSet { intervals: out },
                Bound::Open(b) => Bound::Closed(b),
                Bound::Closed(b) => Bound::Open(b),
            };
        }
        out.push(Interval {
            lo,
            hi: Bound::Unbounded,
        });
        IntervalSet::from_intervals(out)
    }

    /// Intersection (via De Morgan — still linear-ish at these sizes).
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        self.complement().union(&other.complement()).complement()
    }

    /// Difference.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        self.intersect(&other.complement())
    }

    /// Convert to a unary generalized relation.
    pub fn to_relation(&self) -> GeneralizedRelation {
        let mut rel = GeneralizedRelation::empty(1);
        for iv in &self.intervals {
            let mut raws = Vec::new();
            match iv.lo {
                Bound::Unbounded => {}
                Bound::Open(a) => raws.push(RawAtom::new(Term::cst(a), RawOp::Lt, Term::var(0))),
                Bound::Closed(a) => raws.push(RawAtom::new(Term::cst(a), RawOp::Le, Term::var(0))),
            }
            match iv.hi {
                Bound::Unbounded => {}
                Bound::Open(b) => raws.push(RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(b))),
                Bound::Closed(b) => raws.push(RawAtom::new(Term::var(0), RawOp::Le, Term::cst(b))),
            }
            for t in GeneralizedTuple::from_raw(1, raws) {
                rel.insert(t);
            }
        }
        rel
    }

    /// Convert a unary generalized relation to canonical interval form.
    ///
    /// Each satisfiable tuple of a unary relation denotes one interval;
    /// we extract its bounds by inspecting the (simplified) constraints.
    pub fn from_relation(rel: &GeneralizedRelation) -> IntervalSet {
        assert_eq!(rel.arity(), 1, "interval sets are unary");
        let mut intervals = Vec::new();
        for t in rel.tuples() {
            let t = t.simplify();
            let mut lo = Bound::Unbounded;
            let mut hi = Bound::Unbounded;
            for a in t.atoms() {
                let (x_on_left, c) = match (a.lhs(), a.rhs()) {
                    (Term::Var(Var(0)), Term::Const(c)) => (true, c),
                    (Term::Const(c), Term::Var(Var(0))) => (false, c),
                    _ => unreachable!("unary tuple has only var-const atoms"),
                };
                match (a.op(), x_on_left) {
                    (CompOp::Eq, _) => {
                        lo = tighten_lo(lo, Bound::Closed(c));
                        hi = tighten_hi(hi, Bound::Closed(c));
                    }
                    (CompOp::Lt, true) => hi = tighten_hi(hi, Bound::Open(c)),
                    (CompOp::Le, true) => hi = tighten_hi(hi, Bound::Closed(c)),
                    (CompOp::Lt, false) => lo = tighten_lo(lo, Bound::Open(c)),
                    (CompOp::Le, false) => lo = tighten_lo(lo, Bound::Closed(c)),
                }
            }
            let iv = Interval { lo, hi };
            if iv.valid() {
                intervals.push(iv);
            }
        }
        IntervalSet::from_intervals(intervals)
    }
}

fn tighten_lo(cur: Bound, new: Bound) -> Bound {
    match (cur, new) {
        (Bound::Unbounded, n) => n,
        (c, Bound::Unbounded) => c,
        (Bound::Open(a), Bound::Open(b)) => Bound::Open(a.max(b)),
        (Bound::Closed(a), Bound::Closed(b)) => Bound::Closed(a.max(b)),
        (Bound::Open(a), Bound::Closed(b)) | (Bound::Closed(b), Bound::Open(a)) => {
            if a >= b {
                Bound::Open(a)
            } else {
                Bound::Closed(b)
            }
        }
    }
}

fn tighten_hi(cur: Bound, new: Bound) -> Bound {
    match (cur, new) {
        (Bound::Unbounded, n) => n,
        (c, Bound::Unbounded) => c,
        (Bound::Open(a), Bound::Open(b)) => Bound::Open(a.min(b)),
        (Bound::Closed(a), Bound::Closed(b)) => Bound::Closed(a.min(b)),
        (Bound::Open(a), Bound::Closed(b)) | (Bound::Closed(b), Bound::Open(a)) => {
            if a <= b {
                Bound::Open(a)
            } else {
                Bound::Closed(b)
            }
        }
    }
}

/// Do two intervals (first sorted before second by `lo`) overlap or touch so
/// that their union is a single interval?
fn touches_or_overlaps(a: &Interval, b: &Interval) -> bool {
    // b.lo vs a.hi
    match (&a.hi, &b.lo) {
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
        (Bound::Closed(x), Bound::Closed(y)) => y <= x || y == x,
        (Bound::Closed(x), Bound::Open(y)) => y <= x,
        (Bound::Open(x), Bound::Closed(y)) => y <= x,
        // (a, x) and (x, b) do NOT merge: x is missing.
        (Bound::Open(x), Bound::Open(y)) => y < x,
    }
}

/// Union hull of two overlapping/touching intervals (a sorted before b).
fn hull(a: &Interval, b: &Interval) -> Interval {
    let hi = match (&a.hi, &b.hi) {
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => Bound::Unbounded,
        (Bound::Closed(x), Bound::Closed(y)) => Bound::Closed(*x.max(y)),
        (Bound::Open(x), Bound::Open(y)) => Bound::Open(*x.max(y)),
        (Bound::Closed(x), Bound::Open(y)) => {
            if y > x {
                Bound::Open(*y)
            } else {
                Bound::Closed(*x)
            }
        }
        (Bound::Open(x), Bound::Closed(y)) => {
            if y >= x {
                Bound::Closed(*y)
            } else {
                Bound::Open(*x)
            }
        }
    };
    Interval { lo: a.lo, hi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    #[test]
    fn membership() {
        let s = IntervalSet::from_intervals(vec![
            Interval::closed(rat(0, 1), rat(1, 1)),
            Interval::open(rat(2, 1), rat(3, 1)),
        ]);
        assert!(s.contains(&rat(0, 1)));
        assert!(s.contains(&rat(1, 2)));
        assert!(!s.contains(&rat(2, 1)));
        assert!(s.contains(&rat(5, 2)));
        assert!(!s.contains(&rat(3, 1)));
    }

    #[test]
    fn normalization_merges_overlaps() {
        let s = IntervalSet::from_intervals(vec![
            Interval::closed(rat(0, 1), rat(2, 1)),
            Interval::closed(rat(1, 1), rat(3, 1)),
        ]);
        assert_eq!(s.intervals().len(), 1);
        assert!(s.contains(&rat(3, 1)));
    }

    #[test]
    fn adjacent_closed_open_merges() {
        // [0,1] ∪ (1,2) = [0,2)
        let s = IntervalSet::from_intervals(vec![
            Interval::closed(rat(0, 1), rat(1, 1)),
            Interval::open(rat(1, 1), rat(2, 1)),
        ]);
        assert_eq!(s.intervals().len(), 1);
        assert!(s.contains(&rat(1, 1)));
        assert!(!s.contains(&rat(2, 1)));
    }

    #[test]
    fn adjacent_open_open_does_not_merge() {
        // (0,1) ∪ (1,2) stays two intervals: 1 is missing
        let s = IntervalSet::from_intervals(vec![
            Interval::open(rat(0, 1), rat(1, 1)),
            Interval::open(rat(1, 1), rat(2, 1)),
        ]);
        assert_eq!(s.intervals().len(), 2);
        assert!(!s.contains(&rat(1, 1)));
        // adding the point merges everything
        let s2 = s.union(&IntervalSet::from_intervals(vec![Interval::point(rat(
            1, 1,
        ))]));
        assert_eq!(s2.intervals().len(), 1);
    }

    #[test]
    fn complement_roundtrip() {
        let s = IntervalSet::from_intervals(vec![
            Interval::closed(rat(0, 1), rat(1, 1)),
            Interval::point(rat(5, 1)),
            Interval {
                lo: Bound::Open(rat(7, 1)),
                hi: Bound::Unbounded,
            },
        ]);
        let c = s.complement();
        assert!(!c.contains(&rat(0, 1)));
        assert!(c.contains(&rat(-1, 1)));
        assert!(c.contains(&rat(2, 1)));
        assert!(!c.contains(&rat(5, 1)));
        assert!(c.contains(&rat(7, 1)));
        assert!(!c.contains(&rat(8, 1)));
        assert_eq!(c.complement(), s);
    }

    #[test]
    fn intersect_difference() {
        let a = IntervalSet::from_intervals(vec![Interval::closed(rat(0, 1), rat(10, 1))]);
        let b = IntervalSet::from_intervals(vec![Interval::closed(rat(5, 1), rat(15, 1))]);
        let i = a.intersect(&b);
        assert!(i.contains(&rat(7, 1)));
        assert!(!i.contains(&rat(1, 1)));
        let d = a.difference(&b);
        assert!(d.contains(&rat(1, 1)));
        assert!(!d.contains(&rat(5, 1)));
    }

    #[test]
    fn relation_roundtrip() {
        let s = IntervalSet::from_intervals(vec![
            Interval::open(rat(0, 1), rat(1, 1)),
            Interval::point(rat(3, 1)),
            Interval {
                lo: Bound::Unbounded,
                hi: Bound::Open(rat(-5, 1)),
            },
        ]);
        let rel = s.to_relation();
        let back = IntervalSet::from_relation(&rel);
        assert_eq!(back, s);
    }

    #[test]
    fn relation_with_contradictory_bounds_is_empty_interval() {
        use crate::atom::{RawAtom, RawOp};
        // x < 0 ∧ x > 1 — unsat, filtered by relation construction
        let rel = GeneralizedRelation::from_raw(
            1,
            vec![
                RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(rat(0, 1))),
                RawAtom::new(Term::var(0), RawOp::Gt, Term::cst(rat(1, 1))),
            ],
        );
        assert!(IntervalSet::from_relation(&rel).is_empty());
    }

    #[test]
    fn all_and_empty() {
        assert!(IntervalSet::all().contains(&rat(42, 1)));
        assert!(IntervalSet::all().complement().is_empty());
        assert!(IntervalSet::empty().complement().contains(&rat(0, 1)));
    }
}
