//! A composable constraint-relational-algebra plan layer.
//!
//! \[KKR90\]'s closed-form evaluation result is algebraic at heart: the
//! relational algebra operators — union, difference, selection, projection,
//! join, rename — all preserve finite representability over dense-order
//! constraints. This module exposes them as an explicit *plan* IR with an
//! executor and a small optimizer, the shape a real engine exposes to
//! query frontends (the FO evaluator of `dco-fo` is the calculus face of
//! the same algebra).
//!
//! ```
//! use dco_core::prelude::*;
//! use dco_core::algebra::Plan;
//!
//! let tri = GeneralizedRelation::from_raw(2, vec![
//!     RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
//!     RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
//!     RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
//! ]);
//! let db = Database::new(Schema::new().with("R", 2)).with("R", tri);
//!
//! // σ_{x0 < 5} (π_{x0} R)
//! let plan = Plan::scan("R")
//!     .project(&[0])
//!     .select(RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(rat(5, 1))));
//! let out = plan.execute(&db).unwrap();
//! assert!(out.contains_point(&[rat(1, 1)]));
//! assert!(!out.contains_point(&[rat(6, 1)]));
//! ```

use crate::atom::{RawAtom, Var};
use crate::database::Database;
use crate::relation::GeneralizedRelation;
use std::fmt;

/// A relational-algebra plan over named base relations.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Scan a named relation.
    Scan(String),
    /// A constant relation.
    Literal(GeneralizedRelation),
    /// Selection σ: conjoin a constraint.
    Select(Box<Plan>, RawAtom),
    /// Projection π onto the listed columns (in the given order).
    Project(Box<Plan>, Vec<u32>),
    /// Cartesian product ×.
    Product(Box<Plan>, Box<Plan>),
    /// Equi-join on column pairs `(left, right)`.
    Join(Box<Plan>, Box<Plan>, Vec<(u32, u32)>),
    /// Union ∪.
    Union(Box<Plan>, Box<Plan>),
    /// Difference ∖.
    Difference(Box<Plan>, Box<Plan>),
    /// Complement wrt `Q^k`.
    Complement(Box<Plan>),
}

/// Errors during plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Unknown base relation.
    UnknownRelation(String),
    /// Arity mismatch between operands or column references.
    Arity(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownRelation(n) => write!(f, "unknown relation {n}"),
            PlanError::Arity(m) => write!(f, "arity error: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl Plan {
    /// Scan a base relation.
    pub fn scan(name: &str) -> Plan {
        Plan::Scan(name.to_string())
    }

    /// σ: filter by a constraint.
    pub fn select(self, atom: RawAtom) -> Plan {
        Plan::Select(Box::new(self), atom)
    }

    /// π: keep the listed columns (order defines the output layout).
    pub fn project(self, cols: &[u32]) -> Plan {
        Plan::Project(Box::new(self), cols.to_vec())
    }

    /// ×: cartesian product.
    pub fn product(self, other: Plan) -> Plan {
        Plan::Product(Box::new(self), Box::new(other))
    }

    /// Equi-join on `(left column, right column)` pairs.
    pub fn join_on(self, other: Plan, on: &[(u32, u32)]) -> Plan {
        Plan::Join(Box::new(self), Box::new(other), on.to_vec())
    }

    /// ∪.
    pub fn union(self, other: Plan) -> Plan {
        Plan::Union(Box::new(self), Box::new(other))
    }

    /// ∖.
    pub fn difference(self, other: Plan) -> Plan {
        Plan::Difference(Box::new(self), Box::new(other))
    }

    /// ¬ (wrt the full space of the operand's arity).
    pub fn complement(self) -> Plan {
        Plan::Complement(Box::new(self))
    }

    /// Execute against a database.
    pub fn execute(&self, db: &Database) -> Result<GeneralizedRelation, PlanError> {
        match self {
            Plan::Scan(name) => db
                .get(name)
                .cloned()
                .ok_or_else(|| PlanError::UnknownRelation(name.clone())),
            Plan::Literal(rel) => Ok(rel.clone()),
            Plan::Select(input, atom) => {
                let rel = input.execute(db)?;
                for v in atom.lhs.as_var().into_iter().chain(atom.rhs.as_var()) {
                    if v.0 >= rel.arity() {
                        return Err(PlanError::Arity(format!(
                            "selection column {} out of arity {}",
                            v.0,
                            rel.arity()
                        )));
                    }
                }
                Ok(rel.select(*atom))
            }
            Plan::Project(input, cols) => {
                let rel = input.execute(db)?;
                let arity = rel.arity();
                for &c in cols {
                    if c >= arity {
                        return Err(PlanError::Arity(format!(
                            "projection column {c} out of arity {arity}"
                        )));
                    }
                }
                // Build: widen to arity + |cols|, pin the new columns to the
                // projected sources, eliminate the original block, narrow.
                let out_arity = cols.len() as u32;
                let total = arity + out_arity;
                let mut r = rel.widen(total);
                for (i, &src) in cols.iter().enumerate() {
                    r = r.select(RawAtom::new(
                        crate::atom::Term::var(arity + i as u32),
                        crate::atom::RawOp::Eq,
                        crate::atom::Term::var(src),
                    ));
                }
                for j in (0..arity).rev() {
                    r = r.project_out(Var(j));
                }
                // shift the kept block down
                let shifted = r.rename(total, |v| {
                    if v.0 >= arity {
                        Var(v.0 - arity)
                    } else {
                        // unconstrained leftovers may appear in renames only
                        // if still mentioned — they are not, post-projection.
                        Var(v.0 + out_arity)
                    }
                });
                Ok(shifted.narrow(out_arity))
            }
            Plan::Product(l, r) => {
                let lrel = l.execute(db)?;
                let rrel = r.execute(db)?;
                Ok(lrel.product(&rrel))
            }
            Plan::Join(l, r, on) => {
                let lrel = l.execute(db)?;
                let rrel = r.execute(db)?;
                let la = lrel.arity();
                let mut prod = lrel.product(&rrel);
                for &(lc, rc) in on {
                    if lc >= la || rc >= rrel.arity() {
                        return Err(PlanError::Arity(format!(
                            "join columns ({lc}, {rc}) out of arities ({la}, {})",
                            rrel.arity()
                        )));
                    }
                    prod = prod.select(RawAtom::new(
                        crate::atom::Term::var(lc),
                        crate::atom::RawOp::Eq,
                        crate::atom::Term::var(la + rc),
                    ));
                }
                Ok(prod)
            }
            Plan::Union(l, r) => {
                let lrel = l.execute(db)?;
                let rrel = r.execute(db)?;
                if lrel.arity() != rrel.arity() {
                    return Err(PlanError::Arity("union of different arities".to_string()));
                }
                Ok(lrel.union(&rrel))
            }
            Plan::Difference(l, r) => {
                let lrel = l.execute(db)?;
                let rrel = r.execute(db)?;
                if lrel.arity() != rrel.arity() {
                    return Err(PlanError::Arity(
                        "difference of different arities".to_string(),
                    ));
                }
                Ok(lrel.difference(&rrel))
            }
            Plan::Complement(input) => Ok(input.execute(db)?.complement()),
        }
    }

    /// Push selections toward the leaves (below projections they commute
    /// with, through unions, into both product branches when the columns
    /// allow). A small but real optimizer — the experiments don't depend
    /// on it; tests assert plan equivalence.
    pub fn optimize(self) -> Plan {
        match self {
            Plan::Select(input, atom) => {
                let input = input.optimize();
                match input {
                    Plan::Union(l, r) => Plan::Union(
                        Box::new(Plan::Select(l, atom).optimize()),
                        Box::new(Plan::Select(r, atom).optimize()),
                    ),
                    Plan::Product(l, r) => {
                        // if the atom touches only left columns, push left
                        let l_arity = l.arity_hint();
                        let max_col = atom
                            .lhs
                            .as_var()
                            .into_iter()
                            .chain(atom.rhs.as_var())
                            .map(|v| v.0)
                            .max();
                        match (l_arity, max_col) {
                            (Some(la), Some(mc)) if mc < la => {
                                Plan::Product(Box::new(Plan::Select(l, atom).optimize()), r)
                            }
                            _ => Plan::Select(Box::new(Plan::Product(l, r)), atom),
                        }
                    }
                    other => Plan::Select(Box::new(other), atom),
                }
            }
            Plan::Project(input, cols) => Plan::Project(Box::new(input.optimize()), cols),
            Plan::Product(l, r) => Plan::Product(Box::new(l.optimize()), Box::new(r.optimize())),
            Plan::Join(l, r, on) => Plan::Join(Box::new(l.optimize()), Box::new(r.optimize()), on),
            Plan::Union(l, r) => Plan::Union(Box::new(l.optimize()), Box::new(r.optimize())),
            Plan::Difference(l, r) => {
                Plan::Difference(Box::new(l.optimize()), Box::new(r.optimize()))
            }
            Plan::Complement(p) => Plan::Complement(Box::new(p.optimize())),
            leaf => leaf,
        }
    }

    /// Propagate estimated disjunct counts bottom-up through the plan.
    ///
    /// `scan_rows` supplies the estimate for each base relation (the
    /// statistics layer of `dco-analysis` derives these from its per-
    /// relation summaries; `1.0` is a safe default for unknown names).
    /// The propagation rules mirror the DNF algebra: selection keeps at
    /// most the input width, product/join multiply widths, union adds,
    /// difference and complement can split tuples and are charged a
    /// conservative blowup.
    pub fn estimated_rows(&self, scan_rows: &impl Fn(&str) -> f64) -> f64 {
        match self {
            Plan::Scan(name) => scan_rows(name).max(0.0),
            Plan::Literal(rel) => rel.len() as f64,
            Plan::Select(p, _) => (p.estimated_rows(scan_rows) * 0.5).max(1.0),
            Plan::Project(p, _) => p.estimated_rows(scan_rows),
            Plan::Product(l, r) | Plan::Join(l, r, _) => {
                let base = l.estimated_rows(scan_rows) * r.estimated_rows(scan_rows);
                if let Plan::Join(..) = self {
                    (base * 0.5).max(1.0)
                } else {
                    base
                }
            }
            Plan::Union(l, r) => l.estimated_rows(scan_rows) + r.estimated_rows(scan_rows),
            Plan::Difference(l, r) => {
                l.estimated_rows(scan_rows) * (1.0 + r.estimated_rows(scan_rows))
            }
            Plan::Complement(p) => {
                let n = p.estimated_rows(scan_rows);
                (n * n + 1.0).min(1e12)
            }
        }
    }

    /// Cost-based optimization: selection pushdown (as [`Plan::optimize`])
    /// plus cost-driven re-association of product chains. Association of
    /// `×` preserves the flat column layout, so `(a × b) × c` may be
    /// rebracketed freely; the greedy pass repeatedly merges the adjacent
    /// pair with the smallest estimated intermediate, which minimizes the
    /// width of the DNF intermediates the executor materializes. Join
    /// nodes are left alone (their `on` columns are offsets into the left
    /// operand and would need rewriting).
    pub fn optimize_costed(self, scan_rows: &impl Fn(&str) -> f64) -> Plan {
        let plan = self.optimize();
        plan.reassociate_products(scan_rows)
    }

    fn reassociate_products(self, scan_rows: &impl Fn(&str) -> f64) -> Plan {
        match self {
            Plan::Product(..) => {
                let mut chain = Vec::new();
                self.flatten_products(&mut chain);
                let mut chain: Vec<Plan> = chain
                    .into_iter()
                    .map(|p| p.reassociate_products(scan_rows))
                    .collect();
                // Greedy adjacent-pair merge: always combine the cheapest
                // neighbouring pair first. Adjacency keeps column order.
                while chain.len() > 1 {
                    let mut best = 0;
                    let mut best_cost = f64::INFINITY;
                    for i in 0..chain.len() - 1 {
                        let cost = chain[i].estimated_rows(scan_rows)
                            * chain[i + 1].estimated_rows(scan_rows);
                        if cost < best_cost {
                            best_cost = cost;
                            best = i;
                        }
                    }
                    let right = chain.remove(best + 1);
                    let left = std::mem::replace(&mut chain[best], Plan::Scan(String::new()));
                    chain[best] = Plan::Product(Box::new(left), Box::new(right));
                }
                match chain.pop() {
                    Some(p) => p,
                    None => Plan::Literal(GeneralizedRelation::universe(0)),
                }
            }
            Plan::Select(p, atom) => {
                Plan::Select(Box::new(p.reassociate_products(scan_rows)), atom)
            }
            Plan::Project(p, cols) => {
                Plan::Project(Box::new(p.reassociate_products(scan_rows)), cols)
            }
            Plan::Join(l, r, on) => Plan::Join(
                Box::new(l.reassociate_products(scan_rows)),
                Box::new(r.reassociate_products(scan_rows)),
                on,
            ),
            Plan::Union(l, r) => Plan::Union(
                Box::new(l.reassociate_products(scan_rows)),
                Box::new(r.reassociate_products(scan_rows)),
            ),
            Plan::Difference(l, r) => Plan::Difference(
                Box::new(l.reassociate_products(scan_rows)),
                Box::new(r.reassociate_products(scan_rows)),
            ),
            Plan::Complement(p) => Plan::Complement(Box::new(p.reassociate_products(scan_rows))),
            leaf => leaf,
        }
    }

    /// Flatten a left/right-nested product tree into its ordered factor
    /// list (column order is the in-order traversal, which re-association
    /// must preserve).
    fn flatten_products(self, out: &mut Vec<Plan>) {
        match self {
            Plan::Product(l, r) => {
                l.flatten_products(out);
                r.flatten_products(out);
            }
            other => out.push(other),
        }
    }

    /// Static arity, when derivable without a database.
    fn arity_hint(&self) -> Option<u32> {
        match self {
            Plan::Scan(_) => None,
            Plan::Literal(rel) => Some(rel.arity()),
            Plan::Select(p, _) => p.arity_hint(),
            Plan::Project(_, cols) => Some(cols.len() as u32),
            Plan::Product(l, r) => Some(l.arity_hint()? + r.arity_hint()?),
            Plan::Join(l, r, _) => Some(l.arity_hint()? + r.arity_hint()?),
            Plan::Union(l, r) | Plan::Difference(l, r) => l.arity_hint().or(r.arity_hint()),
            Plan::Complement(p) => p.arity_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{RawOp, Term};
    use crate::database::Schema;
    use crate::rational::rat;

    fn db() -> Database {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        let s = GeneralizedRelation::from_points(1, vec![vec![rat(1, 1)], vec![rat(7, 1)]]);
        Database::new(Schema::new().with("R", 2).with("S", 1))
            .with("R", tri)
            .with("S", s)
    }

    #[test]
    fn scan_select() {
        let out = Plan::scan("R")
            .select(RawAtom::new(Term::var(0), RawOp::Gt, Term::cst(rat(5, 1))))
            .execute(&db())
            .unwrap();
        assert!(out.contains_point(&[rat(6, 1), rat(7, 1)]));
        assert!(!out.contains_point(&[rat(1, 1), rat(2, 1)]));
    }

    #[test]
    fn projection_reorders_columns() {
        // π_{1,0} R: swapped triangle
        let out = Plan::scan("R").project(&[1, 0]).execute(&db()).unwrap();
        assert_eq!(out.arity(), 2);
        assert!(out.contains_point(&[rat(2, 1), rat(1, 1)]));
        assert!(!out.contains_point(&[rat(1, 1), rat(2, 1)]));
    }

    #[test]
    fn projection_single_column_is_shadow() {
        let out = Plan::scan("R").project(&[0]).execute(&db()).unwrap();
        assert_eq!(out.arity(), 1);
        assert!(out.contains_point(&[rat(10, 1)]));
        assert!(!out.contains_point(&[rat(11, 1)]));
    }

    #[test]
    fn join_matches_fo_semantics() {
        // R ⋈_{R.1 = S.0}: pairs of the triangle whose y is in S
        let out = Plan::scan("R")
            .join_on(Plan::scan("S"), &[(1, 0)])
            .execute(&db())
            .unwrap();
        assert_eq!(out.arity(), 3);
        assert!(out.contains_point(&[rat(0, 1), rat(1, 1), rat(1, 1)]));
        assert!(out.contains_point(&[rat(3, 1), rat(7, 1), rat(7, 1)]));
        assert!(!out.contains_point(&[rat(0, 1), rat(2, 1), rat(2, 1)]));
    }

    #[test]
    fn union_difference_complement() {
        let s_all = Plan::scan("S");
        let low =
            Plan::scan("S").select(RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(rat(5, 1))));
        let diff = s_all.clone().difference(low).execute(&db()).unwrap();
        assert!(diff.contains_point(&[rat(7, 1)]));
        assert!(!diff.contains_point(&[rat(1, 1)]));
        let comp = s_all.complement().execute(&db()).unwrap();
        assert!(comp.contains_point(&[rat(2, 1)]));
        assert!(!comp.contains_point(&[rat(1, 1)]));
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(
            Plan::scan("Zap").execute(&db()),
            Err(PlanError::UnknownRelation(_))
        ));
        assert!(matches!(
            Plan::scan("S").project(&[3]).execute(&db()),
            Err(PlanError::Arity(_))
        ));
        assert!(matches!(
            Plan::scan("S").union(Plan::scan("R")).execute(&db()),
            Err(PlanError::Arity(_))
        ));
    }

    #[test]
    fn optimizer_preserves_semantics() {
        let plans = vec![
            Plan::scan("R")
                .product(Plan::Literal(GeneralizedRelation::universe(1)))
                .select(RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(rat(5, 1)))),
            Plan::scan("S").union(Plan::scan("S")).select(RawAtom::new(
                Term::var(0),
                RawOp::Gt,
                Term::cst(rat(2, 1)),
            )),
            Plan::scan("R").project(&[0]).select(RawAtom::new(
                Term::var(0),
                RawOp::Le,
                Term::cst(rat(3, 1)),
            )),
        ];
        for plan in plans {
            let base = plan.execute(&db()).unwrap();
            let opt = plan.clone().optimize().execute(&db()).unwrap();
            assert!(opt.equivalent(&base), "optimize changed {plan:?}");
        }
    }

    #[test]
    fn optimizer_pushes_into_products() {
        // The literal has known arity, so selection on col 0 (< left arity
        // is unknown for scans) — use Literal on the left for the hint.
        let lit = Plan::Literal(GeneralizedRelation::universe(1));
        let plan = lit.product(Plan::scan("S")).select(RawAtom::new(
            Term::var(0),
            RawOp::Lt,
            Term::cst(rat(0, 1)),
        ));
        let opt = plan.clone().optimize();
        // selection sits inside the product now
        match &opt {
            Plan::Product(l, _) => assert!(matches!(**l, Plan::Select(..))),
            other => panic!("expected pushed product, got {other:?}"),
        }
        assert!(opt
            .execute(&db())
            .unwrap()
            .equivalent(&plan.execute(&db()).unwrap()));
    }
}
