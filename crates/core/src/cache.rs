//! Memoized satisfiability: a sharded concurrent cache keyed by canonical
//! generalized tuples.
//!
//! Tuples are kept in canonical form (sorted, deduplicated atom vectors —
//! see [`crate::tuple::GeneralizedTuple`]), so structurally identical
//! conjunctions arising in different operations hash to the same key and
//! their satisfiability is decided by the order-graph solver exactly once.
//! The cache is sharded 16 ways so parallel workers deciding different
//! tuples rarely contend on the same lock, and the expensive computation
//! always happens *outside* the lock (two workers may race to decide the
//! same tuple; both get the same verdict, one write wins — benign).
//!
//! Tuples hash in O(1): `GeneralizedTuple::Hash` writes the precomputed
//! fingerprint (see [`crate::intern`]) instead of rehashing the atom
//! vector, and a fingerprint collision falls through to the full structural
//! key compare inside the map — so a probe costs one mix and (almost
//! always) one `u64` compare per bucket entry.
//!
//! Eviction honors [`crate::par::EvalConfig::cache_capacity`] exactly: each
//! shard holds at most `cache_capacity / SHARDS` entries, and an insert
//! into a full shard evicts every other entry in one sweep rather than
//! clearing the shard. Satisfiability verdicts are cheap to recompute
//! relative to the cost of an LRU chain, so victim choice is not worth
//! tracking — but keeping half the hot set (instead of dropping a whole
//! shard) matters to fixpoint workloads that straddle the capacity
//! boundary, and the batched sweep keeps eviction amortized O(1) per
//! insert.
//!
//! Shard locks are *poison-tolerant*: a worker unwinding through a guard
//! abort (or any panic) while holding a shard lock leaves the shard in a
//! trivially consistent state — the critical sections only touch a map
//! entry and plain counters, and values are computed before insertion and
//! never mutated in place — so later evaluations recover the inner state
//! instead of propagating `PoisonError`. An aborted evaluation can at
//! worst have added *correct* memo entries (the chaos suite asserts this).

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::{Mutex, OnceLock};

use crate::par::eval_config;
use crate::tuple::GeneralizedTuple;

const SHARDS: usize = 16;

/// Hit/miss/eviction counters for a [`MemoCache`], read via
/// [`MemoCache::stats`] (or [`sat_cache_stats`] for the global tuple
/// cache). Counters are approximate under concurrency but exact in
/// single-threaded benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Entries dropped by shard-clearing eviction.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache; 0.0 when untouched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard<K, V> {
    map: HashMap<K, V>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

/// A sharded memoization table mapping canonical keys to computed verdicts.
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    hasher: RandomState,
}

impl<K: Hash + Eq + Clone, V: Clone> Default for MemoCache<K, V> {
    fn default() -> Self {
        MemoCache::new()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> MemoCache<K, V> {
    /// An empty cache; capacity is read from the live
    /// [`EvalConfig`](crate::par::EvalConfig) at insert time.
    pub fn new() -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % SHARDS]
    }

    /// Look up `key`, computing and inserting with `compute` on a miss.
    /// `compute` runs without any lock held.
    pub fn get_or_insert_with(&self, key: &K, compute: impl FnOnce() -> V) -> V {
        {
            let mut shard = self
                .shard(key)
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(v) = shard.map.get(key).cloned() {
                shard.hits += 1;
                return v;
            }
            shard.misses += 1;
        }
        let value = compute();
        let per_shard_cap = (eval_config().cache_capacity / SHARDS).max(1);
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Evict in bulk when the shard is full: drop every other entry in
        // one `retain` sweep (amortized O(1) per insert). Evicting single
        // arbitrary victims instead would re-scan the table's growing
        // empty prefix on every insert at capacity — quadratic over a
        // fixpoint run. The loop re-halves only if a capacity
        // reconfiguration shrank the budget by more than half.
        while shard.map.len() >= per_shard_cap {
            let before = shard.map.len();
            let mut i = 0u64;
            shard.map.retain(|_, _| {
                i += 1;
                i.is_multiple_of(2)
            });
            shard.evictions += (before - shard.map.len()) as u64;
        }
        shard.map.insert(key.clone(), value.clone());
        value
    }

    /// Aggregate counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Drop all entries and zero the counters (used between benchmark runs
    /// so hit rates are attributable to one workload).
    pub fn reset(&self) {
        for shard in &self.shards {
            let mut s = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s.map.clear();
            s.hits = 0;
            s.misses = 0;
            s.evictions = 0;
        }
    }

    /// Entries currently cached (across all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide tuple-satisfiability cache used by
/// [`GeneralizedTuple::is_satisfiable`](crate::tuple::GeneralizedTuple::is_satisfiable).
pub fn tuple_sat_cache() -> &'static MemoCache<GeneralizedTuple, bool> {
    static CACHE: OnceLock<MemoCache<GeneralizedTuple, bool>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Counters for the global tuple-satisfiability cache.
pub fn sat_cache_stats() -> CacheStats {
    tuple_sat_cache().stats()
}

/// Clear the global tuple-satisfiability cache and its counters.
pub fn reset_sat_cache() {
    tuple_sat_cache().reset()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_and_counts() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with(&7, || {
                calls += 1;
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(calls, 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_entries_and_counters() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        cache.get_or_insert_with(&1, || 1);
        assert_eq!(cache.len(), 1);
        cache.reset();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn capacity_is_honored_per_shard_exactly() {
        use crate::par::{with_eval_config, EvalConfig};
        let capacity = 4 * SHARDS; // four entries per shard
        with_eval_config(
            EvalConfig {
                cache_capacity: capacity,
                ..EvalConfig::default()
            },
            || {
                let cache: MemoCache<u64, u64> = MemoCache::new();
                let inserts = 2000u64;
                for i in 0..inserts {
                    cache.get_or_insert_with(&i, || i);
                    // Insert-count watermark: the cache never holds more
                    // than its configured capacity, at any point.
                    assert!(
                        cache.len() <= capacity,
                        "watermark exceeded at insert {i}: {} > {capacity}",
                        cache.len()
                    );
                }
                let stats = cache.stats();
                assert_eq!(stats.misses, inserts);
                // Every evicted entry is counted exactly once, so the
                // resident count is inserts minus evictions — whole shards
                // are never dropped.
                assert_eq!(stats.evictions, inserts - cache.len() as u64);
            },
        );
    }

    #[test]
    fn eviction_keeps_cache_bounded() {
        use crate::par::{with_eval_config, EvalConfig};
        with_eval_config(
            EvalConfig {
                cache_capacity: SHARDS, // one entry per shard
                ..EvalConfig::default()
            },
            || {
                let cache: MemoCache<u64, u64> = MemoCache::new();
                for i in 0..1000u64 {
                    cache.get_or_insert_with(&i, || i);
                }
                assert!(cache.len() <= SHARDS);
                assert!(cache.stats().evictions > 0);
            },
        );
    }
}
