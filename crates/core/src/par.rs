//! Evaluation configuration and data-parallel helpers.
//!
//! Every hot operation of the constraint algebra — pairwise conjunction in
//! [`crate::relation::GeneralizedRelation::intersect`], the distribution
//! step of the syntactic complement, per-disjunct quantifier elimination —
//! is a map over an independent vector of generalized tuples, so it
//! parallelizes embarrassingly. This module provides the scoped-thread
//! fork/join primitives those operations use, gated by a process-wide
//! [`EvalConfig`] so small relations never pay thread-spawn overhead.
//!
//! The helpers are built on [`std::thread::scope`] rather than an external
//! work-stealing runtime: operations here are chunky (each tuple costs a
//! satisfiability decision, not nanoseconds), so static chunking over
//! scoped threads captures the available speedup without any dependency.
//!
//! Configuration is resolved in this order:
//!
//! 1. a thread-local override installed by [`with_eval_config`] (used by
//!    the `checked_*` entry points, whose static cost pass picks a config
//!    per query);
//! 2. the process-wide default, set by [`set_eval_config`].
//!
//! Worker threads never parallelize further ([`should_parallelize`] is
//! `false` inside a worker), so nesting is bounded: an operation running
//! inside a parallel region executes its own sub-operations sequentially.

use std::cell::Cell;
use std::sync::RwLock;

/// Tuning knobs for the parallel evaluation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Worker threads for data-parallel operations. `0` means "use
    /// [`std::thread::available_parallelism`]"; `1` disables parallelism.
    pub threads: usize,
    /// Total entries a memo cache holds before a shard is evicted
    /// (see [`crate::cache`]).
    pub cache_capacity: usize,
    /// Minimum number of work units (tuple pairs, disjuncts) an operation
    /// must have before it forks; below this everything stays sequential.
    pub parallel_threshold: usize,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            threads: 0,
            cache_capacity: 1 << 16,
            parallel_threshold: 192,
        }
    }
}

impl EvalConfig {
    /// A configuration that never spawns threads (caching still applies).
    pub fn sequential() -> EvalConfig {
        EvalConfig {
            threads: 1,
            ..EvalConfig::default()
        }
    }

    /// A configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> EvalConfig {
        EvalConfig {
            threads,
            ..EvalConfig::default()
        }
    }

    /// Pick a configuration from a static cost estimate (the analyzer's
    /// predicted cell-decomposition size, or any comparable work measure):
    /// cheap queries run sequentially so they never pay fork overhead,
    /// expensive ones get the full machine.
    pub fn for_predicted_cost(cost: u128) -> EvalConfig {
        let base = eval_config();
        if cost < 10_000 {
            EvalConfig { threads: 1, ..base }
        } else {
            EvalConfig { threads: 0, ..base }
        }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

static GLOBAL_CONFIG: RwLock<EvalConfig> = RwLock::new(EvalConfig {
    threads: 0,
    cache_capacity: 1 << 16,
    parallel_threshold: 192,
});

thread_local! {
    static OVERRIDE: Cell<Option<EvalConfig>> = const { Cell::new(None) };
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Set the process-wide default configuration.
pub fn set_eval_config(cfg: EvalConfig) {
    *GLOBAL_CONFIG.write().expect("config lock poisoned") = cfg;
}

/// The configuration in effect on this thread.
pub fn eval_config() -> EvalConfig {
    OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(|| *GLOBAL_CONFIG.read().expect("config lock poisoned"))
}

/// Run `f` with `cfg` in effect on the current thread (and in any parallel
/// regions it forks), restoring the previous configuration afterwards —
/// panic-safe, so a failing evaluation cannot leak its override.
pub fn with_eval_config<R>(cfg: EvalConfig, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<EvalConfig>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(cfg))));
    f()
}

/// Whether an operation with `work` independent units should fork.
///
/// Always `false` inside a worker thread: nested operations run
/// sequentially, bounding the total thread count.
pub fn should_parallelize(work: usize) -> bool {
    if IN_WORKER.with(Cell::get) {
        return false;
    }
    let cfg = eval_config();
    cfg.effective_threads() > 1 && work >= cfg.parallel_threshold
}

/// Map `f` over `items`, forking iff [`should_parallelize`] says the item
/// count warrants it. Output order always matches input order, so parallel
/// and sequential runs build byte-identical results.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_when(should_parallelize(items.len()), items, f)
}

/// [`par_map`] with the fork decision made by the caller — used when the
/// real work measure is not the item count (e.g. `intersect` forks on the
/// *pair* count while mapping over the left operand's tuples).
pub fn par_map_when<T: Sync, R: Send>(
    parallel: bool,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if !parallel || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let threads = eval_config().effective_threads().min(items.len());
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                s.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    c.iter().map(&f).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// Map over coarse work units (e.g. whole Datalog rule bodies) that are
/// themselves big enough to justify a thread each: forks whenever there
/// are at least two items and more than one thread, ignoring
/// `parallel_threshold`. Unlike [`par_map`] the workers keep their
/// "top-level" status, so the heavy algebra *inside* each unit may still
/// fork its own regions.
pub fn par_map_coarse<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let parallel =
        !IN_WORKER.with(Cell::get) && eval_config().effective_threads() > 1 && items.len() >= 2;
    if !parallel {
        return items.iter().map(f).collect();
    }
    let threads = eval_config().effective_threads().min(items.len());
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_and_preserve_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = par_map_when(false, &items, |x| x * x);
        let par = par_map_when(true, &items, |x| x * x);
        assert_eq!(seq, par);
        assert_eq!(seq[17], 17 * 17);
    }

    #[test]
    fn override_scopes_and_restores() {
        let before = eval_config();
        let inside = with_eval_config(EvalConfig::sequential(), eval_config);
        assert_eq!(inside, EvalConfig::sequential());
        assert_eq!(eval_config(), before);
    }

    #[test]
    fn override_restored_on_panic() {
        let before = eval_config();
        let result = std::panic::catch_unwind(|| {
            with_eval_config(EvalConfig::with_threads(7), || panic!("boom"))
        });
        assert!(result.is_err());
        assert_eq!(eval_config(), before);
    }

    #[test]
    fn workers_do_not_fork_again() {
        let items: Vec<usize> = (0..8).collect();
        let nested: Vec<bool> = par_map_when(true, &items, |_| should_parallelize(usize::MAX));
        assert!(nested.iter().all(|&b| !b));
    }

    #[test]
    fn threshold_gates_forking() {
        with_eval_config(
            EvalConfig {
                threads: 4,
                parallel_threshold: 10,
                ..EvalConfig::default()
            },
            || {
                assert!(!should_parallelize(9));
                assert!(should_parallelize(10));
            },
        );
    }
}
