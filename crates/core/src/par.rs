//! Evaluation configuration and data-parallel helpers.
//!
//! Every hot operation of the constraint algebra — pairwise conjunction in
//! [`crate::relation::GeneralizedRelation::intersect`], the distribution
//! step of the syntactic complement, per-disjunct quantifier elimination —
//! is a map over an independent vector of generalized tuples, so it
//! parallelizes embarrassingly. This module provides the scoped-thread
//! fork/join primitives those operations use, gated by a process-wide
//! [`EvalConfig`] so small relations never pay thread-spawn overhead.
//!
//! The helpers are built on [`std::thread::scope`] rather than an external
//! work-stealing runtime: operations here are chunky (each tuple costs a
//! satisfiability decision, not nanoseconds), so static chunking over
//! scoped threads captures the available speedup without any dependency.
//!
//! Configuration is resolved in this order:
//!
//! 1. a thread-local override installed by [`with_eval_config`] (used by
//!    the `checked_*` entry points, whose static cost pass picks a config
//!    per query);
//! 2. the process-wide default, set by [`set_eval_config`].
//!
//! Worker threads never parallelize further ([`should_parallelize`] is
//! `false` inside a worker), so nesting is bounded: an operation running
//! inside a parallel region executes its own sub-operations sequentially.
//!
//! Workers also inherit the spawning thread's [`crate::guard::EvalGuard`],
//! so deadlines, budgets and cancellation are global to the evaluation,
//! and worker panics are *contained*: a panicked chunk is retried once
//! sequentially on the parent thread (transient faults recover invisibly,
//! modulo a `worker_retries` counter), and only a second failure is
//! reported — as a typed `WorkerPanicked` fault under a guard, or by
//! propagating the panic as the seed did when unguarded.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::guard;

/// Tuning knobs for the parallel evaluation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Worker threads for data-parallel operations. `0` means "use
    /// [`std::thread::available_parallelism`]"; `1` disables parallelism.
    pub threads: usize,
    /// Total entries a memo cache holds before eviction kicks in
    /// (see [`crate::cache`]).
    pub cache_capacity: usize,
    /// Minimum number of work units (tuple pairs, disjuncts) an operation
    /// must have before it forks; below this everything stays sequential.
    pub parallel_threshold: usize,
    /// Carry the order-graph closure forward inside each tuple
    /// ([`crate::sat::SatState`]), making satisfiability an O(1) flag read
    /// instead of a per-call graph rebuild. Off reproduces the seed
    /// kernel's batch decision procedure (with memoization).
    pub incremental_sat: bool,
    /// Skip tuple pairs with disjoint per-variable bounding boxes in
    /// `intersect`/`difference`/`select` and the Datalog delta join before
    /// any conjoin. Sound: disjoint boxes imply an unsatisfiable
    /// conjunction, which the unpruned path would discard anyway.
    pub prune_boxes: bool,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            threads: 0,
            cache_capacity: 1 << 16,
            parallel_threshold: 192,
            incremental_sat: true,
            prune_boxes: true,
        }
    }
}

impl EvalConfig {
    /// A configuration that never spawns threads (caching still applies).
    pub fn sequential() -> EvalConfig {
        EvalConfig {
            threads: 1,
            ..EvalConfig::default()
        }
    }

    /// A configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> EvalConfig {
        EvalConfig {
            threads,
            ..EvalConfig::default()
        }
    }

    /// The seed kernel: batch satisfiability (memoized order-graph rebuild
    /// per decision) and no bounding-box pruning. Used by the benchmark
    /// harness as the "before" configuration of the before/after pair.
    pub fn seed_kernel() -> EvalConfig {
        EvalConfig {
            incremental_sat: false,
            prune_boxes: false,
            ..EvalConfig::default()
        }
    }

    /// The interned kernel: incremental [`crate::sat::SatState`]
    /// satisfiability plus bounding-box pruning (the default).
    pub fn interned_kernel() -> EvalConfig {
        EvalConfig::default()
    }

    /// Pick a configuration from a static cost estimate (the analyzer's
    /// predicted cell-decomposition size, or any comparable work measure):
    /// cheap queries run sequentially so they never pay fork overhead,
    /// expensive ones get the full machine.
    pub fn for_predicted_cost(cost: u128) -> EvalConfig {
        let base = eval_config();
        if cost < 10_000 {
            EvalConfig { threads: 1, ..base }
        } else {
            EvalConfig { threads: 0, ..base }
        }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

static GLOBAL_CONFIG: RwLock<EvalConfig> = RwLock::new(EvalConfig {
    threads: 0,
    cache_capacity: 1 << 16,
    parallel_threshold: 192,
    incremental_sat: true,
    prune_boxes: true,
});

/// Bumped on every [`set_eval_config`] so per-thread snapshots of the
/// global configuration can be validated with one relaxed atomic load
/// instead of taking the `RwLock` on every tuple construction.
static CONFIG_GENERATION: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static OVERRIDE: Cell<Option<EvalConfig>> = const { Cell::new(None) };
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// `(generation, snapshot)` of the global config; generation
    /// `u64::MAX` marks the snapshot as never taken.
    static GLOBAL_SNAPSHOT: Cell<(u64, EvalConfig)> = const {
        Cell::new((
            u64::MAX,
            EvalConfig {
                threads: 0,
                cache_capacity: 1 << 16,
                parallel_threshold: 192,
                incremental_sat: true,
                prune_boxes: true,
            },
        ))
    };
}

/// Set the process-wide default configuration.
pub fn set_eval_config(cfg: EvalConfig) {
    *GLOBAL_CONFIG.write().expect("config lock poisoned") = cfg;
    CONFIG_GENERATION.fetch_add(1, Ordering::Release);
}

/// The configuration in effect on this thread.
///
/// This sits on the tuple-construction hot path, so the global default is
/// cached per thread and revalidated with a single atomic generation load;
/// the `RwLock` is only taken when [`set_eval_config`] has run since the
/// last read on this thread.
pub fn eval_config() -> EvalConfig {
    if let Some(cfg) = OVERRIDE.with(Cell::get) {
        return cfg;
    }
    let generation = CONFIG_GENERATION.load(Ordering::Acquire);
    let (cached_generation, cached) = GLOBAL_SNAPSHOT.with(Cell::get);
    if cached_generation == generation {
        return cached;
    }
    let cfg = *GLOBAL_CONFIG.read().expect("config lock poisoned");
    GLOBAL_SNAPSHOT.with(|s| s.set((generation, cfg)));
    cfg
}

/// Run `f` with `cfg` in effect on the current thread (and in any parallel
/// regions it forks), restoring the previous configuration afterwards —
/// panic-safe, so a failing evaluation cannot leak its override.
pub fn with_eval_config<R>(cfg: EvalConfig, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<EvalConfig>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(cfg))));
    f()
}

/// Whether an operation with `work` independent units should fork.
///
/// Always `false` inside a worker thread: nested operations run
/// sequentially, bounding the total thread count.
pub fn should_parallelize(work: usize) -> bool {
    if IN_WORKER.with(Cell::get) {
        return false;
    }
    let cfg = eval_config();
    cfg.effective_threads() > 1 && work >= cfg.parallel_threshold
}

/// Map `f` over `items`, forking iff [`should_parallelize`] says the item
/// count warrants it. Output order always matches input order, so parallel
/// and sequential runs build byte-identical results.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_when(should_parallelize(items.len()), items, f)
}

/// [`par_map`] with the fork decision made by the caller — used when the
/// real work measure is not the item count (e.g. `intersect` forks on the
/// *pair* count while mapping over the left operand's tuples).
pub fn par_map_when<T: Sync, R: Send>(
    parallel: bool,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if !parallel || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    // Workers are fresh threads with no thread-local override, so the
    // caller's effective configuration (which may be a `with_eval_config`
    // override) and active guard are captured here and installed in each
    // worker — parallel regions always run under the same config and the
    // same deadline/budget as the sequential path.
    let cfg = eval_config();
    let active_guard = guard::current();
    let threads = cfg.effective_threads().min(items.len());
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let g = active_guard.clone();
                let sink = dco_obs::trace::probe_sink();
                let handle = s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    OVERRIDE.with(|o| o.set(Some(cfg)));
                    guard::install_for_worker(g);
                    dco_obs::trace::adopt_probe_sink(sink);
                    c.iter().map(f).collect::<Vec<R>>()
                });
                (c, handle)
            })
            .collect();
        join_contained(handles, f, &mut out);
    });
    out
}

/// Join scoped worker chunks with panic containment: a panicked chunk is
/// retried once sequentially on the calling thread (the caller already has
/// the right config override and guard installed); only a second failure
/// is reported — recorded on the active guard as a `WorkerPanicked` fault,
/// or propagated as a plain panic when unguarded, matching the seed. A
/// guard-abort sentinel from any chunk re-raises after all chunks are
/// drained, so the `run_guarded` boundary sees exactly one unwind.
fn join_contained<'scope, T: Sync, R: Send>(
    parts: Vec<(&[T], std::thread::ScopedJoinHandle<'scope, Vec<R>>)>,
    f: &(impl Fn(&T) -> R + Sync),
    out: &mut Vec<R>,
) {
    let mut abort = false;
    for (c, h) in parts {
        match h.join() {
            Ok(part) => out.extend(part),
            Err(payload) => {
                if payload.is::<guard::GuardAbort>() {
                    abort = true;
                    continue;
                }
                if abort {
                    // The evaluation already has a recorded fault; a retry
                    // would abort at its first probe anyway.
                    continue;
                }
                let retried = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    c.iter().map(f).collect::<Vec<R>>()
                }));
                match retried {
                    Ok(part) => {
                        guard::note_worker_retry();
                        out.extend(part);
                    }
                    Err(retry) => {
                        // Short-circuit order matters: `trip_worker_panic` has
                        // side effects (records the fault, raises cancel) that
                        // must not fire for a guard-abort sentinel.
                        if retry.is::<guard::GuardAbort>()
                            || guard::trip_worker_panic(guard::panic_message(retry.as_ref()))
                        {
                            abort = true;
                        } else {
                            std::panic::resume_unwind(retry);
                        }
                    }
                }
            }
        }
    }
    if abort {
        std::panic::panic_any(guard::GuardAbort);
    }
}

/// Map over coarse work units (e.g. whole Datalog rule bodies) that are
/// themselves big enough to justify a thread each: forks whenever there
/// are at least two items and more than one thread, ignoring
/// `parallel_threshold`. Unlike [`par_map`] the workers keep their
/// "top-level" status, so the heavy algebra *inside* each unit may still
/// fork its own regions.
pub fn par_map_coarse<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let cfg = eval_config();
    let parallel = !IN_WORKER.with(Cell::get) && cfg.effective_threads() > 1 && items.len() >= 2;
    if !parallel {
        return items.iter().map(f).collect();
    }
    let active_guard = guard::current();
    let threads = cfg.effective_threads().min(items.len());
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let g = active_guard.clone();
                let sink = dco_obs::trace::probe_sink();
                let handle = s.spawn(move || {
                    OVERRIDE.with(|o| o.set(Some(cfg)));
                    guard::install_for_worker(g);
                    dco_obs::trace::adopt_probe_sink(sink);
                    c.iter().map(f).collect::<Vec<R>>()
                });
                (c, handle)
            })
            .collect();
        join_contained(handles, f, &mut out);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_and_preserve_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = par_map_when(false, &items, |x| x * x);
        let par = par_map_when(true, &items, |x| x * x);
        assert_eq!(seq, par);
        assert_eq!(seq[17], 17 * 17);
    }

    #[test]
    fn override_scopes_and_restores() {
        let before = eval_config();
        let inside = with_eval_config(EvalConfig::sequential(), eval_config);
        assert_eq!(inside, EvalConfig::sequential());
        assert_eq!(eval_config(), before);
    }

    #[test]
    fn override_restored_on_panic() {
        let before = eval_config();
        let result = std::panic::catch_unwind(|| {
            with_eval_config(EvalConfig::with_threads(7), || panic!("boom"))
        });
        assert!(result.is_err());
        assert_eq!(eval_config(), before);
    }

    #[test]
    fn workers_do_not_fork_again() {
        let items: Vec<usize> = (0..8).collect();
        let nested: Vec<bool> = par_map_when(true, &items, |_| should_parallelize(usize::MAX));
        assert!(nested.iter().all(|&b| !b));
    }

    #[test]
    fn workers_inherit_thread_local_override() {
        // A caller running under with_eval_config must see its override in
        // the scoped worker threads too, or config-sensitive kernels (box
        // pruning, incremental sat) would silently diverge between the
        // sequential and parallel paths.
        let items: Vec<usize> = (0..8).collect();
        let seen: Vec<EvalConfig> = with_eval_config(
            EvalConfig {
                threads: 3,
                cache_capacity: 12345,
                prune_boxes: false,
                ..EvalConfig::default()
            },
            || par_map_when(true, &items, |_| eval_config()),
        );
        assert!(seen
            .iter()
            .all(|cfg| cfg.cache_capacity == 12345 && !cfg.prune_boxes));
    }

    #[test]
    fn panicked_worker_chunk_is_retried_once() {
        use std::sync::atomic::AtomicBool;
        static TRIPPED: AtomicBool = AtomicBool::new(false);
        TRIPPED.store(false, Ordering::SeqCst);
        let items: Vec<usize> = (0..64).collect();
        let guarded = crate::guard::run_guarded(crate::guard::GuardLimits::none(), || {
            par_map_when(true, &items, |&x| {
                // First visit to item 13 panics; the sequential retry of its
                // chunk succeeds.
                if x == 13 && !TRIPPED.swap(true, Ordering::SeqCst) {
                    panic!("transient worker fault");
                }
                x * 2
            })
        })
        .expect("retry must recover the transient fault");
        assert_eq!(
            guarded.value,
            items.iter().map(|x| x * 2).collect::<Vec<_>>()
        );
        assert_eq!(guarded.stats.worker_retries, 1);
    }

    #[test]
    fn persistent_worker_panic_is_typed_under_guard() {
        let items: Vec<usize> = (0..8).collect();
        let err = crate::guard::run_guarded(crate::guard::GuardLimits::none(), || {
            par_map_when(true, &items, |&x| {
                if x == 3 {
                    panic!("persistent worker fault");
                }
                x
            })
        })
        .unwrap_err();
        let crate::guard::EvalErrorKind::WorkerPanicked(msg) = err.kind else {
            panic!("expected WorkerPanicked, got {:?}", err.kind);
        };
        assert!(msg.contains("persistent"));
    }

    #[test]
    fn threshold_gates_forking() {
        with_eval_config(
            EvalConfig {
                threads: 4,
                parallel_threshold: 10,
                ..EvalConfig::default()
            },
            || {
                assert!(!should_parallelize(9));
                assert!(should_parallelize(10));
            },
        );
    }
}
