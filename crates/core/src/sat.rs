//! Incremental dense-order satisfiability and per-variable bounding boxes.
//!
//! The seed kernel decided satisfiability of a conjunction by rebuilding the
//! full order graph (union-find + Tarjan SCC) on every call. This module
//! carries the closure *forward* instead: a [`SatState`] lives inside each
//! [`crate::tuple::GeneralizedTuple`] and is extended atom by atom as the
//! tuple is built, so `is_satisfiable` becomes a flag read.
//!
//! The invariant maintained is the dense-order completeness criterion in a
//! cycle form: a conjunction of normalized atoms over `(Q, <)` is
//! satisfiable iff its order graph — variables and mentioned constants as
//! nodes, one directed edge per `<`/`≤` obligation, equalities as a pair of
//! weak edges, and consecutive mentioned constants chained with built-in
//! strict edges — contains **no cycle through a strict edge**. (This is the
//! SCC criterion of the batch solver restated: an SCC with a strict edge is
//! exactly a strict cycle, and two distinct constants in one SCC would close
//! a cycle through their chain edge.) Because the graph grows one edge at a
//! time and starts cycle-free, every new strict cycle must pass through the
//! newest edge — so one reachability query per inserted edge keeps the
//! invariant, and unsatisfiability is detected at the exact atom that causes
//! it.
//!
//! The same state tracks, for free, the tightest *direct* constant bounds on
//! each variable — the per-variable interval bounding box used by
//! [`crate::relation::GeneralizedRelation::intersect`] and the Datalog delta
//! join to skip tuple pairs that cannot overlap (see [`VarBox`]).

use crate::atom::{Atom, CompOp, Term};
use crate::rational::Rational;

use std::cell::RefCell;

/// Sentinel for "no entry" in the intrusive adjacency lists.
const NIL: u32 = u32::MAX;

/// An over-approximate interval for one variable: the tightest lower and
/// upper bound imposed *directly* by variable-vs-constant atoms (`None`
/// means unbounded on that side; the `bool` is strictness).
///
/// Deliberately no propagation through variable-variable atoms — the box is
/// sound (every point of the tuple lies in the box) and O(1) to maintain,
/// which is all pair pruning needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VarBox {
    /// Tightest direct lower bound `(c, strict)`: `c < x` or `c ≤ x`.
    pub lo: Option<(Rational, bool)>,
    /// Tightest direct upper bound `(c, strict)`: `x < c` or `x ≤ c`.
    pub hi: Option<(Rational, bool)>,
}

impl VarBox {
    /// Tighten the lower bound with `c < x` (strict) or `c ≤ x`.
    pub fn tighten_lo(&mut self, c: Rational, strict: bool) {
        let stronger = match self.lo {
            None => true,
            Some((cur, cur_strict)) => c > cur || (c == cur && strict && !cur_strict),
        };
        if stronger {
            self.lo = Some((c, strict));
        }
    }

    /// Tighten the upper bound with `x < c` (strict) or `x ≤ c`.
    pub fn tighten_hi(&mut self, c: Rational, strict: bool) {
        let stronger = match self.hi {
            None => true,
            Some((cur, cur_strict)) => c < cur || (c == cur && strict && !cur_strict),
        };
        if stronger {
            self.hi = Some((c, strict));
        }
    }

    /// Whether the intersection of the two intervals is empty. Since each
    /// box over-approximates its tuple's projection, `true` implies the two
    /// tuples share no point on this coordinate.
    pub fn disjoint(&self, other: &VarBox) -> bool {
        let lo = max_lo(self.lo, other.lo);
        let hi = min_hi(self.hi, other.hi);
        match (lo, hi) {
            (Some((l, ls)), Some((h, hs))) => l > h || (l == h && (ls || hs)),
            _ => false,
        }
    }
}

fn max_lo(a: Option<(Rational, bool)>, b: Option<(Rational, bool)>) -> Option<(Rational, bool)> {
    match (a, b) {
        (Some((ca, sa)), Some((cb, sb))) => {
            if ca > cb || (ca == cb && sa) {
                Some((ca, sa))
            } else {
                Some((cb, sb))
            }
        }
        (x, None) => x,
        (None, y) => y,
    }
}

fn min_hi(a: Option<(Rational, bool)>, b: Option<(Rational, bool)>) -> Option<(Rational, bool)> {
    match (a, b) {
        (Some((ca, sa)), Some((cb, sb))) => {
            if ca < cb || (ca == cb && sa) {
                Some((ca, sa))
            } else {
                Some((cb, sb))
            }
        }
        (x, None) => x,
        (None, y) => y,
    }
}

/// One directed obligation `from → to` in the order graph (`from` is
/// implicit: edges hang off per-node intrusive lists via `next`).
#[derive(Clone, Copy, Debug)]
struct Edge {
    to: u32,
    next: u32,
    strict: bool,
}

/// The incremental order-graph closure of one generalized tuple.
///
/// Node ids: variables are `0..n_vars`; constants get ids `n_vars, n_vars+1,
/// …` in order of first appearance (the value→id map in `consts` stays
/// sorted by value so consecutive constants can be chained with strict
/// edges). All storage is flat `Vec`s, so cloning a tuple clones its state
/// with a few `memcpy`s and no pointer chasing.
///
/// A state is either *tracked* (graph maintained, verdict available in O(1))
/// or *untracked* (only the bounding boxes are maintained; satisfiability
/// falls back to the batch solver). Tracking is fixed when the tuple is
/// created, from [`crate::par::EvalConfig::incremental_sat`].
#[derive(Clone, Debug)]
pub struct SatState {
    tracked: bool,
    unsat: bool,
    n_vars: u32,
    /// `(value, node id)`, sorted by value.
    consts: Vec<(Rational, u32)>,
    /// Head of each node's edge list (index into `edges`), or `NIL`.
    /// Allocated lazily on the first tracked atom.
    head: Vec<u32>,
    edges: Vec<Edge>,
    /// Per-variable direct constant bounds; empty until the first
    /// variable-vs-constant atom, then length `n_vars`.
    boxes: Vec<VarBox>,
}

impl SatState {
    /// A fresh state for a tuple of the given arity.
    pub fn new(arity: u32, tracked: bool) -> SatState {
        SatState {
            tracked,
            unsat: false,
            n_vars: arity,
            consts: Vec::new(),
            head: Vec::new(),
            edges: Vec::new(),
            boxes: Vec::new(),
        }
    }

    /// Whether this state maintains the order graph.
    pub fn is_tracked(&self) -> bool {
        self.tracked
    }

    /// The incremental verdict: `Some(satisfiable)` when tracked, `None`
    /// when the caller must use the batch solver.
    pub fn verdict(&self) -> Option<bool> {
        self.tracked.then_some(!self.unsat)
    }

    /// The per-variable bounding boxes (empty slice when no direct
    /// variable-vs-constant atom has been seen).
    pub fn boxes(&self) -> &[VarBox] {
        &self.boxes
    }

    /// Number of *strict* edges in the order graph, including the built-in
    /// chain edges between consecutive mentioned constants. Zero for
    /// untracked states (no graph is maintained). The stats layer uses
    /// this as the strict-obligation density of a tuple.
    pub fn strict_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.strict).count()
    }

    /// Number of *weak* edges in the order graph (each equality contributes
    /// two). Zero for untracked states.
    pub fn weak_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| !e.strict).count()
    }

    /// Whether the two states' boxes prove the underlying point sets
    /// disjoint on some coordinate.
    pub fn box_disjoint(&self, other: &SatState) -> bool {
        self.boxes
            .iter()
            .zip(&other.boxes)
            .any(|(a, b)| a.disjoint(b))
    }

    /// Extend the state with one normalized atom (called by
    /// `GeneralizedTuple::push` for each *newly inserted* atom — duplicates
    /// never reach here).
    pub fn assert_atom(&mut self, atom: &Atom) {
        self.update_box(atom);
        if !self.tracked || self.unsat {
            return;
        }
        let u = self.node_of(atom.lhs());
        let v = self.node_of(atom.rhs());
        match atom.op() {
            CompOp::Eq => {
                self.add_edge(u, v, false);
                self.add_edge(v, u, false);
            }
            op => self.add_edge(u, v, op.is_strict()),
        }
    }

    /// Fold a variable-vs-constant atom into the boxes (always maintained,
    /// tracked or not, so pruning stays sound under any config).
    fn update_box(&mut self, atom: &Atom) {
        let (var, c, var_is_lhs) = match (atom.lhs(), atom.rhs()) {
            (Term::Var(v), Term::Const(c)) => (v, c, true),
            (Term::Const(c), Term::Var(v)) => (v, c, false),
            _ => return,
        };
        if self.boxes.is_empty() {
            self.boxes = vec![VarBox::default(); self.n_vars as usize];
        }
        let b = &mut self.boxes[var.index()];
        match atom.op() {
            CompOp::Eq => {
                b.tighten_lo(c, false);
                b.tighten_hi(c, false);
            }
            op => {
                if var_is_lhs {
                    b.tighten_hi(c, op.is_strict());
                } else {
                    b.tighten_lo(c, op.is_strict());
                }
            }
        }
    }

    /// The node id of a term, inserting (and chaining) new constants.
    fn node_of(&mut self, t: Term) -> u32 {
        if self.head.is_empty() {
            self.head = vec![NIL; self.n_vars as usize];
        }
        match t {
            Term::Var(v) => v.0,
            Term::Const(c) => {
                match self.consts.binary_search_by(|(x, _)| x.cmp(&c)) {
                    Ok(pos) => self.consts[pos].1,
                    Err(pos) => {
                        let id = self.head.len() as u32;
                        self.head.push(NIL);
                        self.consts.insert(pos, (c, id));
                        // Built-in order: chain the new constant strictly
                        // between its value-neighbours. The fresh node has
                        // no other edges, so these cannot close a cycle.
                        if pos > 0 {
                            let prev = self.consts[pos - 1].1;
                            self.push_edge(prev, id, true);
                        }
                        if pos + 1 < self.consts.len() {
                            let next = self.consts[pos + 1].1;
                            self.push_edge(id, next, true);
                        }
                        id
                    }
                }
            }
        }
    }

    /// Append an edge without any cycle check (used for constant chaining,
    /// where the new node cannot be on a cycle).
    fn push_edge(&mut self, from: u32, to: u32, strict: bool) {
        let e = self.edges.len() as u32;
        self.edges.push(Edge {
            to,
            next: self.head[from as usize],
            strict,
        });
        self.head[from as usize] = e;
    }

    /// Insert the obligation `from (<|≤) to`, detecting any strict cycle it
    /// closes. The graph has no strict cycle beforehand, so a new one must
    /// pass through this edge: it exists iff a path `to → from` exists and
    /// either that path contains a strict edge or this edge is strict.
    fn add_edge(&mut self, from: u32, to: u32, strict: bool) {
        if self.unsat {
            return;
        }
        if from == to {
            // `x < x` after normalization can only arise transitively; a
            // weak self-loop is vacuous.
            if strict {
                self.unsat = true;
            }
            return;
        }
        let needed = if strict { 1 } else { 2 };
        if self.path_strictness(to, from, needed) >= needed {
            self.unsat = true;
            return;
        }
        self.push_edge(from, to, strict);
    }

    /// The "strictness level" of the best path `from → to`: `0` if
    /// unreachable, `1` if reachable only through weak edges, `2` if some
    /// path contains a strict edge. Stops early once `stop_at` is reached.
    ///
    /// Each node is enqueued at most twice (once per level), so a query is
    /// O(edges) with thread-local scratch and no per-call allocation.
    fn path_strictness(&self, from: u32, to: u32, stop_at: u8) -> u8 {
        thread_local! {
            static SCRATCH: RefCell<(Vec<u8>, Vec<u32>)> =
                const { RefCell::new((Vec::new(), Vec::new())) };
        }
        SCRATCH.with(|s| {
            let (status, stack) = &mut *s.borrow_mut();
            status.clear();
            status.resize(self.head.len(), 0);
            stack.clear();
            status[from as usize] = 1;
            stack.push(from);
            while let Some(x) = stack.pop() {
                let level = status[x as usize];
                let mut e = self.head[x as usize];
                while e != NIL {
                    let Edge {
                        to: y,
                        next,
                        strict,
                    } = self.edges[e as usize];
                    let next_level = if strict { 2 } else { level };
                    if status[y as usize] < next_level {
                        status[y as usize] = next_level;
                        if y == to && next_level >= stop_at {
                            return next_level;
                        }
                        stack.push(y);
                    }
                    e = next;
                }
            }
            status[to as usize]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{CompOp, Term};
    use crate::rational::rat;

    fn atom(l: Term, op: CompOp, r: Term) -> Atom {
        Atom::normalized(l, op, r).expect("nontrivial")[0]
    }

    fn v(i: u32) -> Term {
        Term::var(i)
    }

    fn c(n: i64) -> Term {
        Term::cst(rat(n as i128, 1))
    }

    #[test]
    fn strict_cycle_detected_incrementally() {
        let mut s = SatState::new(3, true);
        s.assert_atom(&atom(v(0), CompOp::Lt, v(1)));
        s.assert_atom(&atom(v(1), CompOp::Lt, v(2)));
        assert_eq!(s.verdict(), Some(true));
        s.assert_atom(&atom(v(2), CompOp::Lt, v(0)));
        assert_eq!(s.verdict(), Some(false));
    }

    #[test]
    fn weak_cycle_stays_satisfiable_until_strict_edge() {
        let mut s = SatState::new(2, true);
        s.assert_atom(&atom(v(0), CompOp::Le, v(1)));
        s.assert_atom(&atom(v(1), CompOp::Le, v(0)));
        assert_eq!(s.verdict(), Some(true));
        s.assert_atom(&atom(v(0), CompOp::Lt, v(1)));
        assert_eq!(s.verdict(), Some(false));
    }

    #[test]
    fn equality_contradicting_strict_order_detected() {
        let mut s = SatState::new(2, true);
        s.assert_atom(&atom(v(0), CompOp::Lt, v(1)));
        s.assert_atom(&atom(v(0), CompOp::Eq, v(1)));
        assert_eq!(s.verdict(), Some(false));
    }

    #[test]
    fn constant_chain_orders_pins() {
        // x = 1 ∧ x = 2 is unsat through the built-in constant chain.
        let mut s = SatState::new(1, true);
        s.assert_atom(&atom(v(0), CompOp::Eq, c(1)));
        assert_eq!(s.verdict(), Some(true));
        s.assert_atom(&atom(v(0), CompOp::Eq, c(2)));
        assert_eq!(s.verdict(), Some(false));
    }

    #[test]
    fn constant_sandwich_between_adjacent_constants() {
        // 3 < x ∧ x < 4 is satisfiable in Q; 3 < x ∧ x < 3 is not.
        let mut s = SatState::new(1, true);
        s.assert_atom(&atom(c(3), CompOp::Lt, v(0)));
        s.assert_atom(&atom(v(0), CompOp::Lt, c(4)));
        assert_eq!(s.verdict(), Some(true));

        let mut s = SatState::new(1, true);
        s.assert_atom(&atom(c(3), CompOp::Lt, v(0)));
        s.assert_atom(&atom(v(0), CompOp::Lt, c(3)));
        assert_eq!(s.verdict(), Some(false));
    }

    #[test]
    fn out_of_order_constant_insertion_chains_correctly() {
        // Mention 5 first, then 1, then 3: chain must stay sorted by value.
        let mut s = SatState::new(1, true);
        s.assert_atom(&atom(v(0), CompOp::Lt, c(5)));
        s.assert_atom(&atom(c(1), CompOp::Lt, v(0)));
        s.assert_atom(&atom(v(0), CompOp::Eq, c(3)));
        assert_eq!(s.verdict(), Some(true));
        // Now contradict through the chain: x < 1 while x = 3.
        s.assert_atom(&atom(v(0), CompOp::Lt, c(1)));
        assert_eq!(s.verdict(), Some(false));
    }

    #[test]
    fn untracked_state_gives_no_verdict_but_keeps_boxes() {
        let mut s = SatState::new(1, false);
        s.assert_atom(&atom(v(0), CompOp::Lt, c(5)));
        assert_eq!(s.verdict(), None);
        assert_eq!(s.boxes()[0].hi, Some((rat(5, 1), true)));
    }

    #[test]
    fn boxes_tighten_and_detect_disjointness() {
        // a: x ∈ [0, 1],  b: x ∈ [2, 3]  → disjoint.
        let mut a = SatState::new(1, true);
        a.assert_atom(&atom(c(0), CompOp::Le, v(0)));
        a.assert_atom(&atom(v(0), CompOp::Le, c(1)));
        let mut b = SatState::new(1, true);
        b.assert_atom(&atom(c(2), CompOp::Le, v(0)));
        b.assert_atom(&atom(v(0), CompOp::Le, c(3)));
        assert!(a.box_disjoint(&b));
        assert!(b.box_disjoint(&a));

        // c: x ∈ [1, 2] overlaps both only at endpoints.
        let mut cbox = SatState::new(1, true);
        cbox.assert_atom(&atom(c(1), CompOp::Le, v(0)));
        cbox.assert_atom(&atom(v(0), CompOp::Le, c(2)));
        assert!(!a.box_disjoint(&cbox));
        // With a strict endpoint the shared point vanishes.
        let mut d = SatState::new(1, true);
        d.assert_atom(&atom(c(1), CompOp::Lt, v(0)));
        d.assert_atom(&atom(v(0), CompOp::Le, c(2)));
        assert!(a.box_disjoint(&d));
    }

    #[test]
    fn unconstrained_sides_never_disjoint() {
        let a = SatState::new(2, true);
        let mut b = SatState::new(2, true);
        b.assert_atom(&atom(c(2), CompOp::Le, v(0)));
        assert!(!a.box_disjoint(&b));
    }
}
