//! # dco-ef — Ehrenfeucht–Fraïssé games for the inexpressibility theorems
//!
//! Theorems 4.2 and 4.3 of *Dense-Order Constraint Databases* (Grumbach &
//! Su, PODS 1995) assert that graph connectivity, parity, and region
//! connectivity are **not** definable in FO+. Their finite combinatorial
//! core is the Ehrenfeucht–Fraïssé method: exhibiting, for every quantifier
//! rank r, pairs of structures with opposite answers on which Duplicator
//! wins the r-round game. This crate provides the exact game solver, the
//! instance generators (cycles, paths, linear orders), and the bridge that
//! turns dense-order regions into finite slot structures so the spatial
//! results can be exercised with the same machinery.
//!
//! ```
//! use dco_ef::{ef_equivalent, structure::generators};
//!
//! // C7 (connected) and C3 ⊎ C4 (disconnected) agree on all FO sentences
//! // of quantifier rank ≤ 2 — the seed of Theorem 4.2.
//! let one = generators::cycle(7);
//! let two = generators::two_cycles(3, 4);
//! assert!(ef_equivalent(&one, &two, 2));
//! ```

#![warn(missing_docs)]

pub mod bridge;
pub mod game;
pub mod rank;
pub mod structure;

pub use bridge::{encode_binary, NotBoxy};
pub use game::{ef_equivalent, spoiler_rank};
pub use rank::{linear_order_thresholds, rank_table, RankRow};
pub use structure::FinStructure;
