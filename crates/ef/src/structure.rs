//! Finite relational structures for Ehrenfeucht–Fraïssé games.
//!
//! The inexpressibility results of §4 (Theorems 4.2 and 4.3) assert that no
//! FO(+) sentence defines connectivity or parity. Their finite combinatorial
//! core is Ehrenfeucht–Fraïssé: if Duplicator wins the r-round EF game
//! between structures `A` and `B`, no sentence of quantifier rank ≤ r
//! distinguishes them. Our experiments exhibit, for every rank r, pairs of
//! structures with opposite query answers on which Duplicator wins — which
//! is exactly how the proofs go.
//!
//! Structures here are finite: universes `0..n` with named relations of
//! fixed arity. Dense-order databases enter through their *finite ordered
//! encodings* (the paper's §3 standard encoding maps any dense-order
//! database to an equivalent finite structure over the ordered constants —
//! see `dco-ef::bridge`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A finite relational structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FinStructure {
    size: usize,
    relations: BTreeMap<String, (usize, BTreeSet<Vec<usize>>)>,
}

impl FinStructure {
    /// A structure with universe `{0, …, size-1}` and no relations.
    pub fn new(size: usize) -> FinStructure {
        FinStructure {
            size,
            relations: BTreeMap::new(),
        }
    }

    /// Universe size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Add (or extend) a relation; tuples must be within the universe.
    pub fn add_relation(
        mut self,
        name: &str,
        arity: usize,
        tuples: impl IntoIterator<Item = Vec<usize>>,
    ) -> FinStructure {
        let entry = self
            .relations
            .entry(name.to_string())
            .or_insert_with(|| (arity, BTreeSet::new()));
        assert_eq!(entry.0, arity, "relation {name} arity changed");
        for t in tuples {
            assert_eq!(t.len(), arity, "tuple arity mismatch");
            assert!(t.iter().all(|&x| x < self.size), "tuple out of universe");
            entry.1.insert(t);
        }
        self
    }

    /// Add the standard linear order `<` on the universe as a binary
    /// relation named `lt` (used for ordered-structure games, where FO has
    /// access to the order like dense-order queries do).
    pub fn with_linear_order(self) -> FinStructure {
        let n = self.size;
        let tuples = (0..n).flat_map(|i| ((i + 1)..n).map(move |j| vec![i, j]));
        self.add_relation("lt", 2, tuples)
    }

    /// Relation names with arities.
    pub fn signature(&self) -> BTreeMap<String, usize> {
        self.relations
            .iter()
            .map(|(n, (a, _))| (n.clone(), *a))
            .collect()
    }

    /// Membership test.
    pub fn holds(&self, name: &str, tuple: &[usize]) -> bool {
        self.relations
            .get(name)
            .map(|(_, set)| set.contains(tuple))
            .unwrap_or(false)
    }

    /// Tuples of a relation.
    pub fn tuples(&self, name: &str) -> Option<&BTreeSet<Vec<usize>>> {
        self.relations.get(name).map(|(_, s)| s)
    }

    /// Disjoint union: universes concatenated, relations merged.
    pub fn disjoint_union(&self, other: &FinStructure) -> FinStructure {
        let mut out = FinStructure::new(self.size + other.size);
        for (name, (arity, tuples)) in &self.relations {
            out = out.add_relation(name, *arity, tuples.iter().cloned());
        }
        for (name, (arity, tuples)) in &other.relations {
            out = out.add_relation(
                name,
                *arity,
                tuples
                    .iter()
                    .map(|t| t.iter().map(|&x| x + self.size).collect()),
            );
        }
        out
    }
}

impl fmt::Display for FinStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "|U| = {}", self.size)?;
        for (name, (arity, tuples)) in &self.relations {
            write!(f, "; {name}/{arity}: {} tuples", tuples.len())?;
        }
        Ok(())
    }
}

/// Generators for the experiment instance families.
pub mod generators {
    use super::FinStructure;

    /// An (undirected) cycle on `n ≥ 3` vertices: edges both ways.
    pub fn cycle(n: usize) -> FinStructure {
        assert!(n >= 3, "cycle needs at least 3 vertices");
        let edges = (0..n).flat_map(|i| {
            let j = (i + 1) % n;
            [vec![i, j], vec![j, i]]
        });
        FinStructure::new(n).add_relation("e", 2, edges)
    }

    /// An (undirected) path on `n ≥ 1` vertices.
    pub fn path(n: usize) -> FinStructure {
        assert!(n >= 1);
        let edges = (0..n.saturating_sub(1)).flat_map(|i| [vec![i, i + 1], vec![i + 1, i]]);
        FinStructure::new(n).add_relation("e", 2, edges)
    }

    /// Two disjoint cycles of sizes `a` and `b`.
    pub fn two_cycles(a: usize, b: usize) -> FinStructure {
        cycle(a).disjoint_union(&cycle(b))
    }

    /// A pure linear order of size `n` (no other relations): the parity
    /// instances of Theorem 4.2 (inputs over integer values, where FO sees
    /// the order).
    pub fn linear_order(n: usize) -> FinStructure {
        FinStructure::new(n).with_linear_order()
    }
}

#[cfg(test)]
mod tests {
    use super::generators::*;

    #[test]
    fn cycle_degrees() {
        let c = cycle(5);
        assert_eq!(c.size(), 5);
        let e = c.tuples("e").unwrap();
        assert_eq!(e.len(), 10); // 5 undirected edges, both directions
        assert!(c.holds("e", &[0, 1]));
        assert!(c.holds("e", &[1, 0]));
        assert!(c.holds("e", &[4, 0]));
        assert!(!c.holds("e", &[0, 2]));
    }

    #[test]
    fn disjoint_union_offsets() {
        let u = two_cycles(3, 4);
        assert_eq!(u.size(), 7);
        assert!(u.holds("e", &[0, 1]));
        assert!(u.holds("e", &[3, 4])); // second cycle shifted by 3
        assert!(!u.holds("e", &[2, 3])); // no cross edges
    }

    #[test]
    fn linear_order_is_total() {
        let l = linear_order(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(l.holds("lt", &[i, j]), i < j);
            }
        }
    }

    #[test]
    fn path_endpoints() {
        let p = path(3);
        assert!(p.holds("e", &[0, 1]));
        assert!(p.holds("e", &[1, 2]));
        assert!(!p.holds("e", &[0, 2]));
        assert_eq!(path(1).tuples("e").unwrap().len(), 0);
    }
}
