//! The Ehrenfeucht–Fraïssé game solver.
//!
//! `ef_equivalent(A, B, r)` decides whether Duplicator wins the r-round EF
//! game on `(A, B)` — equivalently (Ehrenfeucht's theorem), whether `A` and
//! `B` satisfy the same FO sentences of quantifier rank ≤ r over the shared
//! signature. The solver is the exact recursive definition with
//! memoization on (partial map, rounds-left); structures in the experiment
//! families are small enough (≲ 40 elements, r ≤ 5) for this to be fast.

use crate::structure::FinStructure;
use std::collections::HashMap;

/// Decides the r-round EF game between `A` and `B` from the empty position.
pub fn ef_equivalent(a: &FinStructure, b: &FinStructure, rounds: usize) -> bool {
    assert_eq!(
        a.signature(),
        b.signature(),
        "EF game requires a shared signature"
    );
    let mut solver = Solver {
        a,
        b,
        memo: HashMap::new(),
    };
    solver.duplicator_wins(&mut Vec::new(), rounds)
}

/// The minimum number of rounds Spoiler needs to win, if ≤ `max_rounds`
/// (`None` means Duplicator survives all `max_rounds` rounds).
pub fn spoiler_rank(a: &FinStructure, b: &FinStructure, max_rounds: usize) -> Option<usize> {
    (0..=max_rounds).find(|&r| !ef_equivalent(a, b, r))
}

struct Solver<'s> {
    a: &'s FinStructure,
    b: &'s FinStructure,
    memo: HashMap<(Vec<(usize, usize)>, usize), bool>,
}

impl<'s> Solver<'s> {
    /// `position` is a list of pinned pairs (aᵢ, bᵢ) in play order —
    /// canonicalized (sorted) for memoization, since EF positions are sets.
    fn duplicator_wins(&mut self, position: &mut Vec<(usize, usize)>, rounds: usize) -> bool {
        if !self.partial_iso(position) {
            return false;
        }
        if rounds == 0 {
            return true;
        }
        let mut key: Vec<(usize, usize)> = position.clone();
        key.sort_unstable();
        if let Some(&v) = self.memo.get(&(key.clone(), rounds)) {
            return v;
        }
        // Spoiler picks any element of either structure; Duplicator must
        // answer in the other. Duplicator wins iff she has an answer for
        // every Spoiler move.
        let mut wins = true;
        'spoiler: for side_a in [true, false] {
            let n = if side_a { self.a.size() } else { self.b.size() };
            for x in 0..n {
                let m = if side_a { self.b.size() } else { self.a.size() };
                let mut answered = false;
                for y in 0..m {
                    let pair = if side_a { (x, y) } else { (y, x) };
                    position.push(pair);
                    let ok = self.duplicator_wins(position, rounds - 1);
                    position.pop();
                    if ok {
                        answered = true;
                        break;
                    }
                }
                if !answered {
                    wins = false;
                    break 'spoiler;
                }
            }
        }
        self.memo.insert((key, rounds), wins);
        wins
    }

    /// Is the position a partial isomorphism?
    fn partial_iso(&self, position: &[(usize, usize)]) -> bool {
        // injectivity / functionality
        for (i, &(a1, b1)) in position.iter().enumerate() {
            for &(a2, b2) in &position[i + 1..] {
                if (a1 == a2) != (b1 == b2) {
                    return false;
                }
            }
        }
        // relation preservation over all tuples from the pinned domain
        let sig = self.a.signature();
        let domain: Vec<(usize, usize)> = position.to_vec();
        for (name, arity) in sig {
            if !self.check_relation(&name, arity, &domain) {
                return false;
            }
        }
        true
    }

    fn check_relation(&self, name: &str, arity: usize, domain: &[(usize, usize)]) -> bool {
        // iterate all arity-length index vectors over the pinned pairs
        let n = domain.len();
        if n == 0 {
            return true;
        }
        let mut idx = vec![0usize; arity];
        loop {
            let ta: Vec<usize> = idx.iter().map(|&i| domain[i].0).collect();
            let tb: Vec<usize> = idx.iter().map(|&i| domain[i].1).collect();
            if self.a.holds(name, &ta) != self.b.holds(name, &tb) {
                return false;
            }
            // advance
            let mut i = 0;
            loop {
                if i == arity {
                    return true;
                }
                idx[i] += 1;
                if idx[i] < n {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::generators::*;
    use crate::structure::FinStructure;

    #[test]
    fn identical_structures_equivalent_at_any_rank() {
        let c = cycle(5);
        for r in 0..=3 {
            assert!(ef_equivalent(&c, &c, r));
        }
    }

    #[test]
    fn different_sizes_distinguished_eventually() {
        // |A| = 1 vs |A| = 2 with no relations: rank 2 distinguishes
        // ("there exist two distinct elements").
        let one = FinStructure::new(1).add_relation("e", 2, Vec::<Vec<usize>>::new());
        let two = FinStructure::new(2).add_relation("e", 2, Vec::<Vec<usize>>::new());
        assert!(ef_equivalent(&one, &two, 1));
        assert!(!ef_equivalent(&one, &two, 2));
        assert_eq!(spoiler_rank(&one, &two, 3), Some(2));
    }

    #[test]
    fn linear_orders_rank_lower_bound() {
        // Classic: linear orders of length ≥ 2^r are r-equivalent.
        // 4 vs 5 at rank 2: both have ≥ 2² = 4 elements... the sharp bound
        // is: orders of size m, n ≥ 2^r - 1 are r-equivalent. Check a known
        // pair: |4| vs |5| at r = 2 equivalent; distinguished at r = 3.
        let a = linear_order(4);
        let b = linear_order(5);
        assert!(ef_equivalent(&a, &b, 2));
        assert!(!ef_equivalent(&a, &b, 3));
    }

    #[test]
    fn small_orders_distinguished() {
        let a = linear_order(2);
        let b = linear_order(3);
        assert!(ef_equivalent(&a, &b, 1));
        assert!(!ef_equivalent(&a, &b, 2));
    }

    #[test]
    fn cycle_vs_two_cycles_connectivity_core() {
        // The heart of Theorem 4.2's connectivity proof: a long cycle is
        // r-equivalent to two disjoint cycles (locally both look like long
        // paths), yet one is connected and the other is not.
        // Known sufficient sizes: for r = 2, C7 ≡₂ C3 ⊎ C4.
        let one = cycle(7);
        let two = two_cycles(3, 4);
        assert!(
            ef_equivalent(&one, &two, 2),
            "C7 and C3⊎C4 must be 2-round equivalent"
        );
        // and they ARE distinguishable at some higher rank (C3 has triangles)
        assert!(!ef_equivalent(&one, &two, 3));
    }

    #[test]
    fn bigger_cycles_survive_three_rounds() {
        // For r = 3 take cycles long enough that 3-round play cannot
        // measure the difference: C9 vs C4 ⊎ C5... triangle-free both; use
        // known-safe sizes C10 vs C5 ⊎ C5.
        let one = cycle(10);
        let two = two_cycles(5, 5);
        assert!(ef_equivalent(&one, &two, 2));
    }

    #[test]
    fn path_vs_cycle() {
        // A path has endpoints (degree 1), a cycle doesn't; rank 2 sees an
        // endpoint ("x with a unique neighbour") only with 2 more moves —
        // at rank 1 they are equivalent.
        let p = path(6);
        let c = cycle(6);
        assert!(ef_equivalent(&p, &c, 1));
        assert!(!ef_equivalent(&p, &c, 3));
    }
}
