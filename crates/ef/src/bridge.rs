//! Bridge from dense-order constraint relations to finite structures.
//!
//! §3 of the paper observes that a dense-order database is determined, up to
//! order automorphism, by finite data over its ordered constants (the
//! standard encoding; also the homeomorphism onto integer-only
//! representations). For FO over such databases this means: an FO sentence
//! about the infinite pointset translates into an FO sentence (of rank
//! larger by a constant) about a **finite ordered structure** whose
//! elements are the 1-D *slots* — the constants and the open gaps between
//! them.
//!
//! For binary relations that are **boxy** (finite unions of products of
//! intervals — every region in the E3 instance family is), membership of a
//! point depends only on the pair of slots of its coordinates, so the slot
//! structure captures the relation exactly:
//!
//! * universe = `2m + 1` slots in order (gap₀, c₁, gap₁, …, c_m, gap_m);
//! * `lt` — the slot order;
//! * `cst` — which slots are constants;
//! * `r` — which slot pairs lie inside the relation.
//!
//! [`encode_binary`] *checks* boxiness by sampling all three relative
//! orders (`x<y`, `x=y`, `x>y`) inside same-gap cells and fails loudly if
//! they disagree, so the bridge is exact whenever it succeeds. EF
//! equivalence of two encodings at rank r then transfers FO
//! indistinguishability (at slot-translated rank) to the dense-order
//! originals — the form Theorems 4.2/4.3's witnesses take in our
//! experiments.

use crate::structure::FinStructure;
use dco_core::prelude::*;
use std::fmt;

/// Error: the relation is not slot-representable (not boxy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotBoxy {
    /// Human-readable description of the offending cell.
    pub detail: String,
}

impl fmt::Display for NotBoxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "relation is not boxy: {}", self.detail)
    }
}

impl std::error::Error for NotBoxy {}

/// Sample rational for a slot. Slots: even = gap i/2, odd = constant (i-1)/2.
fn slot_sample(consts: &[Rational], slot: usize, nudge: i64) -> Rational {
    let m = consts.len();
    if slot % 2 == 1 {
        return consts[(slot - 1) / 2];
    }
    let gap = slot / 2;
    // Pick a point in the open gap; `nudge` ∈ {0,1,2} selects distinct
    // points for relative-order probing (0 < 1 < 2 within the gap).
    let frac = rat(1 + nudge as i128, 4); // 1/4, 1/2, 3/4
    if m == 0 {
        return frac * rat(4, 1); // 1, 2, 3
    }
    if gap == 0 {
        consts[0] - (rat(4, 1) * (Rational::ONE - frac)) // below c₁
    } else if gap == m {
        consts[m - 1] + (rat(4, 1) * frac) // above c_m
    } else {
        let lo = &consts[gap - 1];
        let hi = &consts[gap];
        lo + &((hi - lo) * frac)
    }
}

/// Encode a binary boxy relation as its finite slot structure.
pub fn encode_binary(rel: &GeneralizedRelation) -> Result<FinStructure, NotBoxy> {
    assert_eq!(rel.arity(), 2, "encode_binary takes binary relations");
    let consts: Vec<Rational> = rel.constants().into_iter().collect();
    let m = consts.len();
    let slots = 2 * m + 1;
    let mut tuples: Vec<Vec<usize>> = Vec::new();
    for u in 0..slots {
        for v in 0..slots {
            // Boxiness check: same-gap pairs must not depend on relative
            // order. Probe (lo,hi), (mid,mid), (hi,lo) when both slots are
            // the same gap; otherwise one probe suffices.
            let same_gap = u == v && u % 2 == 0;
            let probes: Vec<(Rational, Rational)> = if same_gap {
                vec![
                    (slot_sample(&consts, u, 0), slot_sample(&consts, v, 2)),
                    (slot_sample(&consts, u, 1), slot_sample(&consts, v, 1)),
                    (slot_sample(&consts, u, 2), slot_sample(&consts, v, 0)),
                ]
            } else {
                vec![(slot_sample(&consts, u, 1), slot_sample(&consts, v, 1))]
            };
            let answers: Vec<bool> = probes
                .iter()
                .map(|(x, y)| rel.contains_point(&[*x, *y]))
                .collect();
            if answers.windows(2).any(|w| w[0] != w[1]) {
                return Err(NotBoxy {
                    detail: format!("cell ({u},{v}) depends on intra-gap order"),
                });
            }
            if answers[0] {
                tuples.push(vec![u, v]);
            }
        }
    }
    let order = (0..slots).flat_map(|i| ((i + 1)..slots).map(move |j| vec![i, j]));
    let csts = (0..slots).filter(|s| s % 2 == 1).map(|s| vec![s]);
    Ok(FinStructure::new(slots)
        .add_relation("lt", 2, order)
        .add_relation("cst", 1, csts)
        .add_relation("r", 2, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxrel(x0: i64, x1: i64, y0: i64, y1: i64) -> GeneralizedRelation {
        GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(x0 as i128, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(x1 as i128, 1))),
                RawAtom::new(Term::cst(rat(y0 as i128, 1)), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(y1 as i128, 1))),
            ],
        )
    }

    #[test]
    fn single_box_encodes() {
        let r = boxrel(0, 1, 0, 1);
        let s = encode_binary(&r).unwrap();
        // constants {0, 1} → 5 slots; box covers slots {1,2,3}×{1,2,3}
        assert_eq!(s.size(), 5);
        assert!(s.holds("r", &[1, 1]));
        assert!(s.holds("r", &[2, 3]));
        assert!(!s.holds("r", &[0, 1]));
        assert!(!s.holds("r", &[4, 2]));
    }

    #[test]
    fn union_of_boxes_encodes() {
        let r = boxrel(0, 1, 0, 1).union(&boxrel(2, 3, 2, 3));
        let s = encode_binary(&r).unwrap();
        assert!(s.holds("r", &[1, 1]));
        assert!(!s.holds("r", &[1, 5])); // (x=0, y=2): different boxes
    }

    #[test]
    fn diagonal_is_not_boxy() {
        // x = y depends on intra-gap order
        let diag = GeneralizedRelation::from_raw(
            2,
            vec![RawAtom::new(Term::var(0), RawOp::Eq, Term::var(1))],
        );
        assert!(encode_binary(&diag).is_err());
        // x < y likewise
        let lt = GeneralizedRelation::from_raw(
            2,
            vec![RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1))],
        );
        assert!(encode_binary(&lt).is_err());
    }

    #[test]
    fn encoding_is_order_invariant() {
        // Translating the box must give an isomorphic slot structure.
        let a = encode_binary(&boxrel(0, 1, 0, 1)).unwrap();
        let b = encode_binary(&boxrel(100, 101, 100, 101)).unwrap();
        assert_eq!(a, b);
    }
}
