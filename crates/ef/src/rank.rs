//! Distinguishing-rank utilities.
//!
//! The experiments report, for each quantifier rank r, the smallest
//! instances of a family on which Duplicator still wins — i.e. how far a
//! rank-r sentence can "see". These helpers compute such tables for any
//! parameterized family of structure pairs.

use crate::game::ef_equivalent;
use crate::structure::FinStructure;

/// One row of a rank table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankRow {
    /// The quantifier rank probed.
    pub rank: usize,
    /// The smallest family parameter at which the pair is rank-equivalent,
    /// if found within the search bound.
    pub min_equivalent_param: Option<usize>,
}

/// For each rank `1..=max_rank`, find the least `param` in
/// `param_range` such that `family(param)` yields an EF-`rank`-equivalent
/// pair.
pub fn rank_table(
    max_rank: usize,
    param_range: std::ops::Range<usize>,
    family: impl Fn(usize) -> (FinStructure, FinStructure),
) -> Vec<RankRow> {
    (1..=max_rank)
        .map(|rank| {
            let min_equivalent_param = param_range.clone().find(|&p| {
                let (a, b) = family(p);
                ef_equivalent(&a, &b, rank)
            });
            RankRow {
                rank,
                min_equivalent_param,
            }
        })
        .collect()
}

/// The classical theorem the parity experiment instantiates: linear orders
/// `L_m` and `L_n` with `m, n ≥ 2^r − 1` are EF-r-equivalent, and `2^r − 1`
/// is optimal. Returns the measured threshold for each rank.
pub fn linear_order_thresholds(max_rank: usize) -> Vec<(usize, usize)> {
    use crate::structure::generators::linear_order;
    (1..=max_rank)
        .map(|r| {
            let m = (1..64)
                .find(|&m| ef_equivalent(&linear_order(m), &linear_order(m + 1), r))
                .expect("threshold exists below 64");
            (r, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::generators::{cycle, linear_order, two_cycles};

    #[test]
    fn linear_order_thresholds_match_theory() {
        // theory: minimal m with L_m ≡_r L_{m+1} is 2^r − 1
        for (r, m) in linear_order_thresholds(3) {
            assert_eq!(m, (1 << r) - 1, "rank {r}");
        }
    }

    #[test]
    fn rank_table_for_parity_family() {
        let rows = rank_table(2, 1..20, |m| (linear_order(m), linear_order(m + 1)));
        assert_eq!(rows[0].min_equivalent_param, Some(1));
        assert_eq!(rows[1].min_equivalent_param, Some(3));
    }

    #[test]
    fn rank_table_for_connectivity_family() {
        let rows = rank_table(2, 3..10, |n| (cycle(2 * n), two_cycles(n, n)));
        // rank 1: trivially equivalent at the smallest size
        assert_eq!(rows[0].min_equivalent_param, Some(3));
        // rank 2: some threshold exists in range
        assert!(rows[1].min_equivalent_param.is_some());
    }

    #[test]
    fn unsatisfied_rank_reports_none() {
        // a family that is never equivalent: sizes differ by a lot and the
        // game has enough rounds — empty vs nonempty unary relation.
        use crate::structure::FinStructure;
        let rows = rank_table(1, 1..4, |n| {
            (
                FinStructure::new(n).add_relation("u", 1, vec![vec![0]]),
                FinStructure::new(n).add_relation("u", 1, Vec::<Vec<usize>>::new()),
            )
        });
        assert_eq!(rows[0].min_equivalent_param, None);
    }
}
