//! A minimal benchmarking harness exposing the subset of the `criterion`
//! crate's API that this workspace's benches use: `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! It exists so the workspace builds in hermetic environments where no
//! package registry is reachable. Each benchmark runs a fixed number of
//! timed iterations and prints mean wall-clock time per iteration; there is
//! no statistical analysis, warm-up modelling, or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark named `name` parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, b.mean);
        self
    }

    /// Run a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, b.mean);
        self
    }

    fn report(&self, id: &BenchmarkId, mean: Duration) {
        println!("{}/{}: mean {:?} per iteration", self.name, id.label, mean);
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Times a closure over the configured number of iterations.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Time `routine`, recording mean wall-clock per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed call to warm caches and catch panics early.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
