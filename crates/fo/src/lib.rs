//! # dco-fo — first-order queries over dense-order constraint databases
//!
//! The FO query language of Section 4 of *Dense-Order Constraint Databases*
//! (Grumbach & Su, PODS 1995): the relational calculus over `{=, ≤} ∪ Q`,
//! evaluated bottom-up in closed form over generalized relations (the
//! evaluation strategy of \[KKR90\] that gives FO its AC⁰ data complexity).
//!
//! ```
//! use dco_core::prelude::*;
//! use dco_fo::eval_str;
//!
//! // The paper's triangle: R = { (x, y) | 0 ≤ x ≤ y ≤ 10 }.
//! let tri = GeneralizedRelation::from_raw(2, vec![
//!     RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
//!     RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
//!     RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
//! ]);
//! let db = Database::new(Schema::new().with("R", 2)).with("R", tri);
//!
//! // "is the order dense on R's projection?" — a true sentence.
//! let q = eval_str(&db, "forall x y . ((R(x, x) & R(y, y) & x < y) -> exists z . (x < z & z < y))").unwrap();
//! assert_eq!(q.as_bool(), Some(true));
//! ```

#![warn(missing_docs)]

pub mod checked;
pub mod eval;
pub mod explain;
pub mod generic;
pub mod guarded;

pub use checked::{
    checked_eval, checked_eval_str, checked_eval_with, CheckedEvalError, CheckedResult,
};
pub use eval::{eval, eval_in_ctx, eval_str, EvalError, QueryResult};
pub use explain::{explain, explain_with_stats, Explained};
pub use generic::{check_generic, check_generic_fixing, sample_automorphism, GenericityOutcome};
pub use guarded::{default_limits, try_eval, try_eval_str, try_eval_with, TryEvalError, TryResult};
