//! Analyzer-gated FO evaluation.
//!
//! [`checked_eval`] and [`checked_eval_str`] run the `dco-analysis` passes
//! (schema conformance, dead-subformula detection, cost bounding) before
//! touching the evaluator. A query with any error-severity finding is
//! rejected up front with the full diagnostic list; warnings ride along on
//! the successful result.

use crate::eval::{eval, EvalError, QueryResult};
use dco_analysis::stats::DbStats;
use dco_analysis::{analyze_formula, cost, plan_formula, AnalysisOptions, Diagnostic, Severity};
use dco_core::prelude::{with_eval_config, Database, EvalConfig};
use dco_logic::{parse_formula, Formula, ParseError};
use std::fmt;

/// Why a checked evaluation did not produce a result.
#[derive(Debug)]
pub enum CheckedEvalError {
    /// The analyzer found error-severity problems; the query was never
    /// evaluated. All diagnostics (including warnings) are included.
    Rejected(Vec<Diagnostic>),
    /// The query text did not parse.
    Parse(ParseError),
    /// The analyzer passed but evaluation still failed.
    Eval(EvalError),
}

impl fmt::Display for CheckedEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckedEvalError::Rejected(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count();
                writeln!(f, "query rejected by static analysis ({errors} error(s)):")?;
                for d in diags {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            CheckedEvalError::Parse(e) => write!(f, "parse error: {e}"),
            CheckedEvalError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for CheckedEvalError {}

/// A query result together with the analyzer's non-fatal findings.
#[derive(Debug, Clone)]
pub struct CheckedResult {
    /// The evaluation result.
    pub result: QueryResult,
    /// Warnings and notes from the analyzer (never error severity).
    pub diagnostics: Vec<Diagnostic>,
}

/// Analyze a formula against the database schema, then evaluate it.
pub fn checked_eval(db: &Database, formula: &Formula) -> Result<CheckedResult, CheckedEvalError> {
    checked_eval_with(db, formula, &AnalysisOptions::default())
}

/// [`checked_eval`] with explicit analyzer options.
pub fn checked_eval_with(
    db: &Database,
    formula: &Formula,
    options: &AnalysisOptions,
) -> Result<CheckedResult, CheckedEvalError> {
    let diagnostics = analyze_formula(formula, Some(db.schema()), options);
    if dco_analysis::has_errors(&diagnostics) {
        return Err(CheckedEvalError::Rejected(diagnostics));
    }
    // Let the cost pass pick the evaluation configuration: queries whose
    // predicted cell count is small run sequentially (no fork overhead),
    // expensive ones get the parallel layer. The planner then reorders
    // conjuncts and quantifier variables by the database's statistics —
    // an equivalence-preserving rewrite, so the analysis above (which ran
    // on the original) still applies.
    let cfg = eval_config_for(db, formula);
    let planned = plan_formula(formula, &DbStats::of_database(db));
    let result = with_eval_config(cfg, || eval(db, &planned)).map_err(CheckedEvalError::Eval)?;
    Ok(CheckedResult {
        result,
        diagnostics,
    })
}

/// Choose an [`EvalConfig`] from the analyzer's static cost estimate for
/// `formula` over `db` (constants from both, variables from the formula).
pub fn eval_config_for(db: &Database, formula: &Formula) -> EvalConfig {
    let mut constants = cost::constants_of_formula(formula);
    constants.extend(db.constants());
    let vars = cost::all_vars(formula).len();
    EvalConfig::for_predicted_cost(cost::predicted_cells(constants.len(), vars))
}

/// Parse, analyze, and evaluate a query string.
pub fn checked_eval_str(db: &Database, src: &str) -> Result<CheckedResult, CheckedEvalError> {
    let formula = parse_formula(src).map_err(CheckedEvalError::Parse)?;
    checked_eval(db, &formula)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::prelude::*;

    fn db() -> Database {
        let e = GeneralizedRelation::from_points(
            2,
            vec![vec![rat(1, 1), rat(2, 1)], vec![rat(2, 1), rat(3, 1)]],
        );
        Database::new(Schema::new().with("e", 2)).with("e", e)
    }

    #[test]
    fn good_query_evaluates_with_no_diagnostics() {
        let out = checked_eval_str(&db(), "exists y . e(x, y)").unwrap();
        assert!(out.diagnostics.is_empty());
        assert_eq!(out.result.columns, vec!["x".to_string()]);
    }

    #[test]
    fn arity_mismatch_is_rejected_not_evaluated() {
        let err = checked_eval_str(&db(), "e(x, y, z)").unwrap_err();
        let CheckedEvalError::Rejected(diags) = err else {
            panic!("expected rejection");
        };
        assert_eq!(diags[0].code, "DCO102");
    }

    #[test]
    fn unknown_predicate_is_rejected() {
        let err = checked_eval_str(&db(), "r(x)").unwrap_err();
        let CheckedEvalError::Rejected(diags) = err else {
            panic!("expected rejection");
        };
        assert_eq!(diags[0].code, "DCO101");
    }

    #[test]
    fn dead_conjunction_warns_but_evaluates_empty() {
        let out = checked_eval_str(&db(), "e(x, y) & x < y & y < x").unwrap();
        assert!(out.diagnostics.iter().any(|d| d.code == "DCO402"));
        assert!(out.result.relation.is_empty());
    }

    #[test]
    fn parse_errors_are_reported_not_panicked() {
        let err = checked_eval_str(&db(), "exists . (").unwrap_err();
        assert!(matches!(err, CheckedEvalError::Parse(_)));
    }
}
