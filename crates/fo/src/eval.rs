//! Bottom-up, closed-form evaluation of FO over dense-order databases.
//!
//! Following \[KKR90\] (recalled in §4 of the paper), every FO formula over
//! `{=, ≤} ∪ Q` and database predicates can be evaluated *bottom-up*: each
//! subformula denotes a finitely representable relation over its context of
//! variables, and the logical connectives map to the constraint algebra —
//! `∧` to intersection, `∨` to union, `¬` to complement, `∃` to dense-order
//! quantifier elimination. The output is again a generalized relation
//! (*closure*), which is what gives FO its AC⁰ data complexity and makes it
//! a genuine query language in the sense of Definition 3.1.
//!
//! The evaluator works over an explicit *context*: an ordered list of
//! variable names, one per output column. Quantified variables extend the
//! context temporarily and are projected away; quantifier shadowing is
//! resolved by alpha-renaming.

use dco_core::prelude::*;
use dco_logic::{ArgTerm, Formula, LinExpr};
use std::collections::BTreeSet;
use std::fmt;

/// Errors during FO evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Formula uses a predicate the database does not declare.
    UnknownPredicate(String),
    /// Predicate used at a different arity than declared.
    ArityMismatch {
        /// Predicate name.
        name: String,
        /// Declared arity.
        declared: u32,
        /// Arity used in the formula.
        used: u32,
    },
    /// Formula contains genuine linear arithmetic — not in the FO
    /// (dense-order) fragment; use `dco-linear`'s FO+ evaluator instead.
    NotDenseOrder(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownPredicate(n) => write!(f, "unknown predicate {n}"),
            EvalError::ArityMismatch {
                name,
                declared,
                used,
            } => {
                write!(
                    f,
                    "predicate {name}: declared arity {declared}, used at {used}"
                )
            }
            EvalError::NotDenseOrder(at) => {
                write!(f, "formula is not in the dense-order fragment: {at}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The result of evaluating a query: named output columns and the
/// generalized relation over them. Arity 0 encodes boolean queries
/// (universe = true, empty = false).
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names, in column order.
    pub columns: Vec<String>,
    /// The denoted relation.
    pub relation: GeneralizedRelation,
}

impl QueryResult {
    /// For boolean (sentence) queries: the truth value.
    pub fn as_bool(&self) -> Option<bool> {
        if self.columns.is_empty() {
            Some(!self.relation.is_empty())
        } else {
            None
        }
    }
}

/// Maximum number of disjuncts before intermediate results are simplified.
const SIMPLIFY_THRESHOLD: usize = 24;

/// Evaluate an FO formula against a database.
///
/// The output columns are the formula's free variables in sorted order.
pub fn eval(db: &Database, formula: &Formula) -> Result<QueryResult, EvalError> {
    let columns: Vec<String> = formula.free_vars().into_iter().collect();
    let relation = eval_in_ctx(db, formula, &columns)?;
    Ok(QueryResult { columns, relation })
}

/// Evaluate a formula string (parse + eval).
pub fn eval_str(db: &Database, src: &str) -> Result<QueryResult, Box<dyn std::error::Error>> {
    let f = dco_logic::parse_formula(src)?;
    Ok(eval(db, &f)?)
}

/// Evaluate `formula` over the given context (which must contain all its
/// free variables); the result has arity `ctx.len()` with columns in
/// context order.
pub fn eval_in_ctx(
    db: &Database,
    formula: &Formula,
    ctx: &[String],
) -> Result<GeneralizedRelation, EvalError> {
    let k = ctx.len() as u32;
    let col = |name: &str| -> Option<u32> { ctx.iter().position(|c| c == name).map(|i| i as u32) };
    match formula {
        Formula::True => Ok(GeneralizedRelation::universe(k)),
        Formula::False => Ok(GeneralizedRelation::empty(k)),
        Formula::Compare(l, op, r) => {
            let lt = simple_term(l, &col)
                .ok_or_else(|| EvalError::NotDenseOrder(formula.to_string()))?;
            let rt = simple_term(r, &col)
                .ok_or_else(|| EvalError::NotDenseOrder(formula.to_string()))?;
            Ok(GeneralizedRelation::from_raw(
                k,
                [RawAtom::new(lt, *op, rt)],
            ))
        }
        Formula::Pred(name, args) => eval_pred(db, name, args, ctx),
        Formula::Not(f) => {
            let r = eval_in_ctx(db, f, ctx)?;
            Ok(maybe_simplify(r.complement()))
        }
        Formula::And(fs) => {
            let mut acc = GeneralizedRelation::universe(k);
            for f in fs {
                acc = acc.intersect(&eval_in_ctx(db, f, ctx)?);
                acc = maybe_simplify(acc);
                if acc.is_empty() {
                    break;
                }
            }
            Ok(acc)
        }
        Formula::Or(fs) => {
            let mut acc = GeneralizedRelation::empty(k);
            for f in fs {
                acc = acc.union(&eval_in_ctx(db, f, ctx)?);
            }
            Ok(maybe_simplify(acc))
        }
        Formula::Implies(a, b) => {
            let na = eval_in_ctx(db, a, ctx)?.complement();
            let rb = eval_in_ctx(db, b, ctx)?;
            Ok(maybe_simplify(na.union(&rb)))
        }
        Formula::Iff(a, b) => {
            let ra = eval_in_ctx(db, a, ctx)?;
            let rb = eval_in_ctx(db, b, ctx)?;
            let both = ra.intersect(&rb);
            let neither = ra.complement().intersect(&rb.complement());
            Ok(maybe_simplify(both.union(&neither)))
        }
        Formula::Exists(vs, body) => {
            // Alpha-rename bound variables that collide with the context.
            let (fresh_vs, body) = freshen(vs, body, ctx);
            let mut ctx2: Vec<String> = ctx.to_vec();
            ctx2.extend(fresh_vs.iter().cloned());
            let mut r = eval_in_ctx(db, &body, &ctx2)?;
            for i in (ctx.len()..ctx2.len()).rev() {
                r = r.project_out(Var(i as u32));
            }
            Ok(maybe_simplify(r.narrow(k)))
        }
        Formula::Forall(vs, body) => {
            // ∀x.φ = ¬∃x.¬φ
            let inner = Formula::Exists(vs.clone(), Box::new(Formula::not((**body).clone())));
            let r = eval_in_ctx(db, &inner, ctx)?;
            Ok(maybe_simplify(r.complement()))
        }
    }
}

pub(crate) fn maybe_simplify(r: GeneralizedRelation) -> GeneralizedRelation {
    if r.len() > SIMPLIFY_THRESHOLD {
        r.simplify()
    } else {
        r
    }
}

/// Convert a simple linear expression to a core term over context columns.
pub(crate) fn simple_term(e: &LinExpr, col: &impl Fn(&str) -> Option<u32>) -> Option<Term> {
    if let Some(v) = e.as_simple_var() {
        // Free vars are always in ctx by construction; treat missing as a
        // caller bug surfaced as NotDenseOrder upstream.
        return col(v).map(Term::var);
    }
    e.as_const().map(Term::Const)
}

/// Evaluate a predicate atom into the context space.
///
/// The predicate's columns are appended as temporary columns, linked to the
/// context (or pinned to constants), and projected away.
pub(crate) fn eval_pred(
    db: &Database,
    name: &str,
    args: &[ArgTerm],
    ctx: &[String],
) -> Result<GeneralizedRelation, EvalError> {
    let rel = db
        .get(name)
        .ok_or_else(|| EvalError::UnknownPredicate(name.to_string()))?;
    let declared = rel.arity();
    if declared as usize != args.len() {
        return Err(EvalError::ArityMismatch {
            name: name.to_string(),
            declared,
            used: args.len() as u32,
        });
    }
    let k = ctx.len() as u32;
    let total = k + declared;
    // Place the predicate's columns at k..k+declared.
    let mut r = rel.rename(total, |v| Var(v.0 + k));
    // Link each argument.
    for (j, arg) in args.iter().enumerate() {
        let pred_col = Term::var(k + j as u32);
        match arg {
            ArgTerm::Const(c) => {
                r = r.select(RawAtom::new(pred_col, RawOp::Eq, Term::Const(*c)));
            }
            ArgTerm::Var(v) => {
                let i = ctx
                    .iter()
                    .position(|c| c == v)
                    .expect("free variable missing from context") as u32;
                r = r.select(RawAtom::new(pred_col, RawOp::Eq, Term::var(i)));
            }
        }
    }
    // Project away the temporaries.
    for j in (k..total).rev() {
        r = r.project_out(Var(j));
    }
    Ok(r.narrow(k))
}

/// Alpha-rename quantified variables that collide with the enclosing
/// context, rewriting the body accordingly.
pub(crate) fn freshen(vs: &[String], body: &Formula, ctx: &[String]) -> (Vec<String>, Formula) {
    let mut taken: BTreeSet<String> = ctx.iter().cloned().collect();
    let mut out_vs = Vec::with_capacity(vs.len());
    let mut out_body = body.clone();
    for v in vs {
        if taken.contains(v) {
            let mut i = 1;
            let fresh = loop {
                let cand = format!("{v}_{i}");
                if !taken.contains(&cand) && !vs.contains(&cand) {
                    break cand;
                }
                i += 1;
            };
            out_body = rename_free(&out_body, v, &fresh);
            taken.insert(fresh.clone());
            out_vs.push(fresh);
        } else {
            taken.insert(v.clone());
            out_vs.push(v.clone());
        }
    }
    (out_vs, out_body)
}

/// Rename free occurrences of `from` to `to` (capture-free because `to` is
/// chosen fresh).
fn rename_free(f: &Formula, from: &str, to: &str) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Compare(l, op, r) => {
            Formula::Compare(l.rename_var(from, to), *op, r.rename_var(from, to))
        }
        Formula::Pred(name, args) => Formula::Pred(
            name.clone(),
            args.iter()
                .map(|a| match a {
                    ArgTerm::Var(v) if v == from => ArgTerm::Var(to.to_string()),
                    other => other.clone(),
                })
                .collect(),
        ),
        Formula::Not(x) => Formula::not(rename_free(x, from, to)),
        Formula::And(fs) => Formula::And(fs.iter().map(|x| rename_free(x, from, to)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|x| rename_free(x, from, to)).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(rename_free(a, from, to)),
            Box::new(rename_free(b, from, to)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(rename_free(a, from, to)),
            Box::new(rename_free(b, from, to)),
        ),
        Formula::Exists(vs, body) => {
            if vs.iter().any(|v| v == from) {
                f.clone()
            } else {
                Formula::Exists(vs.clone(), Box::new(rename_free(body, from, to)))
            }
        }
        Formula::Forall(vs, body) => {
            if vs.iter().any(|v| v == from) {
                f.clone()
            } else {
                Formula::Forall(vs.clone(), Box::new(rename_free(body, from, to)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_logic::parse_formula;

    fn interval_rel(lo: i64, hi: i64) -> GeneralizedRelation {
        GeneralizedRelation::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(lo as i128, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(hi as i128, 1))),
            ],
        )
    }

    /// The paper's triangle 0 ≤ x ≤ y ≤ 10 as relation R.
    fn triangle_db() -> Database {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        Database::new(Schema::new().with("R", 2)).with("R", tri)
    }

    fn run(db: &Database, src: &str) -> QueryResult {
        eval(db, &parse_formula(src).unwrap()).unwrap()
    }

    #[test]
    fn atom_only() {
        let db = Database::new(Schema::new());
        let q = run(&db, "x < 1/2");
        assert_eq!(q.columns, vec!["x"]);
        assert!(q.relation.contains_point(&[rat(0, 1)]));
        assert!(!q.relation.contains_point(&[rat(1, 1)]));
    }

    #[test]
    fn predicate_projection() {
        let db = triangle_db();
        // shadow of the triangle: ∃y. R(x,y) = [0,10]
        let q = run(&db, "exists y . R(x, y)");
        assert!(q.relation.contains_point(&[rat(10, 1)]));
        assert!(q.relation.contains_point(&[rat(0, 1)]));
        assert!(!q.relation.contains_point(&[rat(11, 1)]));
    }

    #[test]
    fn predicate_with_constant_arg() {
        let db = triangle_db();
        // the slice R(3, y): 3 ≤ y ≤ 10
        let q = run(&db, "R(3, y)");
        assert_eq!(q.columns, vec!["y"]);
        assert!(q.relation.contains_point(&[rat(5, 1)]));
        assert!(!q.relation.contains_point(&[rat(2, 1)]));
    }

    #[test]
    fn predicate_with_repeated_var() {
        let db = triangle_db();
        // the diagonal of the triangle: R(x,x) = [0,10]
        let q = run(&db, "R(x, x)");
        assert!(q.relation.contains_point(&[rat(7, 1)]));
        assert!(!q.relation.contains_point(&[rat(-1, 1)]));
    }

    #[test]
    fn negation_complement() {
        let db = triangle_db();
        let q = run(&db, "!R(x, y)");
        assert!(q.relation.contains_point(&[rat(5, 1), rat(2, 1)]));
        assert!(!q.relation.contains_point(&[rat(2, 1), rat(5, 1)]));
    }

    #[test]
    fn forall_as_negated_exists() {
        let db = triangle_db();
        // points x such that forall y. R(x,y) -> y >= 5: upper slice
        let q = run(&db, "forall y . (R(x, y) -> y >= 5)");
        // x in [5,10]: then R(x,y) forces y >= x >= 5. true.
        assert!(q.relation.contains_point(&[rat(7, 1)]));
        // x = 0: R(0,0) holds but 0 < 5. false.
        assert!(!q.relation.contains_point(&[rat(0, 1)]));
        // x outside [0,10]: vacuously true.
        assert!(q.relation.contains_point(&[rat(20, 1)]));
    }

    #[test]
    fn boolean_sentence() {
        let db = triangle_db();
        let q = run(&db, "exists x y . R(x, y)");
        assert_eq!(q.as_bool(), Some(true));
        let q = run(&db, "exists x . R(x, 11)");
        assert_eq!(q.as_bool(), Some(false));
        let q = run(&db, "forall x y . (R(x, y) -> x <= y)");
        assert_eq!(q.as_bool(), Some(true));
    }

    #[test]
    fn shadowed_quantifier() {
        let db = Database::new(Schema::new());
        // outer x free; inner x bound — must not interfere
        let q = run(&db, "x < 1 & exists x . x > 5");
        assert_eq!(q.columns, vec!["x"]);
        assert!(q.relation.contains_point(&[rat(0, 1)]));
        assert!(!q.relation.contains_point(&[rat(2, 1)]));
    }

    #[test]
    fn iff_and_implies() {
        let db = Database::new(Schema::new());
        let q = run(&db, "(x < 0) <-> (x < 0)");
        assert!(q.relation.equivalent(&GeneralizedRelation::universe(1)));
        let q = run(&db, "(x < 0) -> (x < 1)");
        assert!(q.relation.equivalent(&GeneralizedRelation::universe(1)));
        let q = run(&db, "(x < 1) -> (x < 0)");
        assert!(!q.relation.contains_point(&[rat(1, 2)]));
        assert!(q.relation.contains_point(&[rat(5, 1)]));
    }

    #[test]
    fn unknown_predicate_is_error() {
        let db = Database::new(Schema::new());
        let f = parse_formula("Zap(x)").unwrap();
        assert!(matches!(eval(&db, &f), Err(EvalError::UnknownPredicate(_))));
    }

    #[test]
    fn arity_mismatch_is_error() {
        let db = triangle_db();
        let f = parse_formula("R(x)").unwrap();
        assert!(matches!(
            eval(&db, &f),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn linear_atom_rejected() {
        let db = Database::new(Schema::new());
        let f = parse_formula("x + y < 1").unwrap();
        assert!(matches!(eval(&db, &f), Err(EvalError::NotDenseOrder(_))));
    }

    #[test]
    fn between_query_dense_density() {
        // "there is a point strictly between any two S points" — true over
        // any S because Q is dense: ∀x y.(S(x) & S(y) & x < y -> ∃z.(x < z & z < y))
        let db = Database::new(Schema::new().with("S", 1)).with("S", interval_rel(0, 4));
        let q = run(
            &db,
            "forall x y . ((S(x) & S(y) & x < y) -> exists z . (x < z & z < y))",
        );
        assert_eq!(q.as_bool(), Some(true));
    }

    #[test]
    fn output_closed_form_is_reusable() {
        // Feed an output relation back in as an input: closure in action.
        let db = triangle_db();
        let shadow = run(&db, "exists y . R(x, y)").relation.narrow(1);
        let db2 = Database::new(Schema::new().with("S", 1)).with("S", shadow);
        let q = run(&db2, "S(x) & x > 5");
        assert!(q.relation.contains_point(&[rat(6, 1)]));
        assert!(!q.relation.contains_point(&[rat(2, 1)]));
    }
}
