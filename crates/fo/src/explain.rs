//! EXPLAIN for the FO evaluator: evaluate a formula while recording, for
//! every connective, the estimated cardinality (from the static planner)
//! and the *actual* width of the intermediate relation the evaluator
//! produced at that node.
//!
//! [`explain`] plans the formula first (`dco_analysis::planner`), then runs
//! an instrumented mirror of [`eval_in_ctx`](crate::eval::eval_in_ctx) over
//! the planned formula. The mirror applies the same simplification
//! thresholds, alpha-renaming, and ¬∃¬ rewriting as the real evaluator, so
//! the measured cardinalities are the ones a `checked_eval` of the same
//! query would have paid — a drift test asserts the result relations are
//! identical.

use crate::eval::{eval_pred, freshen, maybe_simplify, simple_term, EvalError, QueryResult};
use dco_analysis::explain::{PlanNode, QueryPlan};
use dco_analysis::planner::{estimate_formula, plan_formula};
use dco_analysis::stats::DbStats;
use dco_core::prelude::*;
use dco_logic::Formula;

/// An explained evaluation: the query result plus the measured plan.
#[derive(Debug, Clone)]
pub struct Explained {
    /// The evaluation result (identical to `eval` of the planned formula).
    pub result: QueryResult,
    /// The plan tree with estimated and actual cardinality per node.
    pub plan: QueryPlan,
}

/// Plan and evaluate `formula`, collecting stats from `db` on the fly.
pub fn explain(db: &Database, formula: &Formula) -> Result<Explained, EvalError> {
    explain_with_stats(db, formula, &DbStats::of_database(db))
}

/// Plan and evaluate `formula` under pre-computed statistics (the store
/// passes its per-generation snapshot here instead of recomputing).
pub fn explain_with_stats(
    db: &Database,
    formula: &Formula,
    stats: &DbStats,
) -> Result<Explained, EvalError> {
    let planned = plan_formula(formula, stats);
    let columns: Vec<String> = planned.free_vars().into_iter().collect();
    let (relation, root) = explain_in_ctx(db, &planned, &columns, stats)?;
    Ok(Explained {
        result: QueryResult { columns, relation },
        plan: QueryPlan {
            planned: planned.to_string(),
            root,
        },
    })
}

/// The instrumented mirror of `eval_in_ctx`: same recursion, same
/// normalization calls, plus a [`PlanNode`] per connective.
fn explain_in_ctx(
    db: &Database,
    formula: &Formula,
    ctx: &[String],
    stats: &DbStats,
) -> Result<(GeneralizedRelation, PlanNode), EvalError> {
    let k = ctx.len() as u32;
    let est = estimate_formula(formula, stats);
    let col = |name: &str| -> Option<u32> { ctx.iter().position(|c| c == name).map(|i| i as u32) };
    match formula {
        Formula::True => {
            let r = GeneralizedRelation::universe(k);
            let n = PlanNode::new("true", "", est).with_actual(r.len() as u64);
            Ok((r, n))
        }
        Formula::False => {
            let r = GeneralizedRelation::empty(k);
            let n = PlanNode::new("false", "", est).with_actual(r.len() as u64);
            Ok((r, n))
        }
        Formula::Compare(l, op, r) => {
            let lt = simple_term(l, &col)
                .ok_or_else(|| EvalError::NotDenseOrder(formula.to_string()))?;
            let rt = simple_term(r, &col)
                .ok_or_else(|| EvalError::NotDenseOrder(formula.to_string()))?;
            let rel = GeneralizedRelation::from_raw(k, [RawAtom::new(lt, *op, rt)]);
            let n =
                PlanNode::new("compare", formula.to_string(), est).with_actual(rel.len() as u64);
            Ok((rel, n))
        }
        Formula::Pred(name, args) => {
            let rel = eval_pred(db, name, args, ctx)?;
            let n = PlanNode::new("pred", name.clone(), est).with_actual(rel.len() as u64);
            Ok((rel, n))
        }
        Formula::Not(f) => {
            let (r, c) = explain_in_ctx(db, f, ctx, stats)?;
            let out = maybe_simplify(r.complement());
            let n = PlanNode::new("not", "", est)
                .with_actual(out.len() as u64)
                .with_children(vec![c]);
            Ok((out, n))
        }
        Formula::And(fs) => {
            let mut acc = GeneralizedRelation::universe(k);
            let mut children = Vec::with_capacity(fs.len());
            for f in fs {
                let (r, c) = explain_in_ctx(db, f, ctx, stats)?;
                children.push(c);
                acc = maybe_simplify(acc.intersect(&r));
                if acc.is_empty() {
                    break;
                }
            }
            let n = PlanNode::new("and", "", est)
                .with_actual(acc.len() as u64)
                .with_children(children);
            Ok((acc, n))
        }
        Formula::Or(fs) => {
            let mut acc = GeneralizedRelation::empty(k);
            let mut children = Vec::with_capacity(fs.len());
            for f in fs {
                let (r, c) = explain_in_ctx(db, f, ctx, stats)?;
                children.push(c);
                acc = acc.union(&r);
            }
            let acc = maybe_simplify(acc);
            let n = PlanNode::new("or", "", est)
                .with_actual(acc.len() as u64)
                .with_children(children);
            Ok((acc, n))
        }
        Formula::Implies(a, b) => {
            let (ra, ca) = explain_in_ctx(db, a, ctx, stats)?;
            let (rb, cb) = explain_in_ctx(db, b, ctx, stats)?;
            let out = maybe_simplify(ra.complement().union(&rb));
            let n = PlanNode::new("implies", "", est)
                .with_actual(out.len() as u64)
                .with_children(vec![ca, cb]);
            Ok((out, n))
        }
        Formula::Iff(a, b) => {
            let (ra, ca) = explain_in_ctx(db, a, ctx, stats)?;
            let (rb, cb) = explain_in_ctx(db, b, ctx, stats)?;
            let both = ra.intersect(&rb);
            let neither = ra.complement().intersect(&rb.complement());
            let out = maybe_simplify(both.union(&neither));
            let n = PlanNode::new("iff", "", est)
                .with_actual(out.len() as u64)
                .with_children(vec![ca, cb]);
            Ok((out, n))
        }
        Formula::Exists(vs, body) => {
            let (fresh_vs, body) = freshen(vs, body, ctx);
            let mut ctx2: Vec<String> = ctx.to_vec();
            ctx2.extend(fresh_vs.iter().cloned());
            let (mut r, c) = explain_in_ctx(db, &body, &ctx2, stats)?;
            for i in (ctx.len()..ctx2.len()).rev() {
                r = r.project_out(Var(i as u32));
            }
            let out = maybe_simplify(r.narrow(k));
            let n = PlanNode::new("exists", fresh_vs.join(", "), est)
                .with_actual(out.len() as u64)
                .with_children(vec![c]);
            Ok((out, n))
        }
        Formula::Forall(vs, body) => {
            // Mirror the evaluator's ¬∃¬ rewrite, keeping the rewrite
            // visible as the node's child subtree.
            let inner = Formula::Exists(vs.clone(), Box::new(Formula::not((**body).clone())));
            let (r, c) = explain_in_ctx(db, &inner, ctx, stats)?;
            let out = maybe_simplify(r.complement());
            let n = PlanNode::new("forall", vs.join(", "), est)
                .with_actual(out.len() as u64)
                .with_children(vec![c]);
            Ok((out, n))
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use dco_analysis::planner::plan_formula;
    use dco_logic::parse_formula;

    fn triangle_db() -> Database {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        Database::new(Schema::new().with("R", 2)).with("R", tri)
    }

    #[test]
    fn explain_matches_eval_of_planned_formula() {
        let db = triangle_db();
        let f = parse_formula("exists y . (R(x, y) & x < 5 & !R(y, x))").unwrap();
        let ex = explain(&db, &f).unwrap();
        let planned = plan_formula(&f, &DbStats::of_database(&db));
        let direct = eval(&db, &planned).unwrap();
        assert_eq!(ex.result.columns, direct.columns);
        assert!(ex.result.relation.equivalent(&direct.relation));
    }

    #[test]
    fn every_node_carries_actual_cardinality() {
        let db = triangle_db();
        let f = parse_formula("forall y . (R(x, y) -> y >= 5)").unwrap();
        let ex = explain(&db, &f).unwrap();
        assert!(
            ex.plan.root.fully_measured(),
            "unmeasured node in:\n{}",
            ex.plan.render()
        );
        let text = ex.plan.render();
        for line in text.lines().skip(1) {
            assert!(line.contains("est=") && line.contains("act="), "{line}");
        }
    }

    #[test]
    fn explain_errors_match_eval_errors() {
        let db = Database::new(Schema::new());
        let f = parse_formula("Zap(x)").unwrap();
        assert!(matches!(
            explain(&db, &f),
            Err(EvalError::UnknownPredicate(_))
        ));
    }
}
