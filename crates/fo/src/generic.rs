//! Genericity (Definition 3.1) checking.
//!
//! A mapping `Q` from databases to relations is a *query* only if it commutes
//! with every order automorphism `π` of Q: `Q(π(D)) = π(Q(D))`. This module
//! provides a property-test harness: it samples random piecewise-linear
//! automorphisms anchored at the database's constants and verifies the
//! commutation equation semantically. Every evaluator in the workspace is
//! run through this harness in the integration tests — it is the executable
//! face of the paper's definition of a dense-order query.

use dco_core::automorphism::rand_like::{RngLike, XorShift32};
use dco_core::prelude::*;

/// Outcome of a genericity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenericityOutcome {
    /// Commutation held for all sampled automorphisms.
    Generic,
    /// Commutation failed; carries a printable description of the witness.
    Violation(String),
}

/// Check that `query` commutes with `rounds` random automorphisms of Q.
///
/// `query` maps a database to an output relation (it will be invoked
/// `rounds + 1` times). Equivalence on both sides is semantic.
///
/// For queries that mention constants use [`check_generic_fixing`]: such a
/// query is only closed under automorphisms fixing its constants.
pub fn check_generic(
    db: &Database,
    rounds: usize,
    seed: u32,
    query: impl Fn(&Database) -> GeneralizedRelation,
) -> GenericityOutcome {
    check_generic_fixing(db, &[], rounds, seed, query)
}

/// Like [`check_generic`], but the sampled automorphisms fix the given
/// constants pointwise — the right notion for queries whose formula
/// mentions constants (C-genericity, cf. Definition 3.1).
pub fn check_generic_fixing(
    db: &Database,
    fixed: &[Rational],
    rounds: usize,
    seed: u32,
    query: impl Fn(&Database) -> GeneralizedRelation,
) -> GenericityOutcome {
    let base = query(db);
    let consts: Vec<Rational> = db.constants().into_iter().chain(base.constants()).collect();
    let mut rng = XorShift32::new(seed);
    for round in 0..rounds {
        let pi = Automorphism::random_over_fixing(&consts, fixed, &mut rng);
        let lhs = query(&db.apply_automorphism(&pi));
        let rhs = pi.apply_relation(&base);
        if !lhs.equivalent(&rhs) {
            return GenericityOutcome::Violation(format!(
                "round {round}: Q(pi(D)) = {lhs} but pi(Q(D)) = {rhs}"
            ));
        }
    }
    GenericityOutcome::Generic
}

/// A deliberately non-generic mapping for testing the harness itself: it
/// returns a fixed constant relation regardless of input order structure in
/// a way that depends on absolute values.
pub fn non_generic_example(db: &Database) -> GeneralizedRelation {
    // "all x below the *midpoint of the smallest and largest constant*" —
    // midpoints are not preserved by non-linear automorphisms.
    let consts: Vec<Rational> = db.constants().into_iter().collect();
    if consts.len() < 2 {
        return GeneralizedRelation::empty(1);
    }
    let mid = consts[0]
        .midpoint(&consts[consts.len() - 1])
        .expect("midpoint exists");
    GeneralizedRelation::from_raw(1, [RawAtom::new(Term::var(0), RawOp::Lt, Term::Const(mid))])
}

/// Sample a pseudo-random automorphism for external callers (re-exported
/// convenience over the core RNG plumbing).
pub fn sample_automorphism(consts: &[Rational], seed: u32) -> Automorphism {
    let mut rng = XorShift32::new(seed);
    // burn a few values so nearby seeds diverge
    for _ in 0..4 {
        rng.next_u32();
    }
    Automorphism::random_over(consts, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use dco_logic::parse_formula;

    fn db() -> Database {
        let r = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        Database::new(Schema::new().with("R", 2)).with("R", r)
    }

    #[test]
    fn fo_query_is_generic() {
        let f = parse_formula("exists y . (R(x, y) & x < y)").unwrap();
        let out = check_generic(&db(), 8, 1234, |d| eval(d, &f).expect("evaluates").relation);
        assert_eq!(out, GenericityOutcome::Generic);
    }

    #[test]
    fn harness_detects_violations() {
        let out = check_generic(&db(), 16, 99, non_generic_example);
        assert!(matches!(out, GenericityOutcome::Violation(_)));
    }

    #[test]
    fn boolean_query_is_generic() {
        let f = parse_formula("exists x y . (R(x, y) & x < y)").unwrap();
        let out = check_generic(&db(), 6, 7, |d| eval(d, &f).expect("evaluates").relation);
        assert_eq!(out, GenericityOutcome::Generic);
    }
}
