//! Fault-tolerant FO evaluation: `try_*` entry points that run the
//! bottom-up evaluator under a `dco_core::guard::EvalGuard`.
//!
//! Where [`crate::checked`] *predicts* (static analysis rejects queries
//! whose estimated cost is absurd), this module *enforces*: the evaluation
//! runs with a deadline, tuple/atom budgets, and a cancellation token, and
//! every failure mode — budget trip, deadline, external cancellation,
//! arithmetic overflow, even a worker panic — is contained at this
//! boundary and returned as a typed [`GuardError`] carrying
//! partial-progress statistics. A fault-free guarded run returns a result
//! structurally identical to the unguarded [`crate::eval::eval`].
//!
//! By default the budgets come from the analyzer's cost pass
//! ([`dco_analysis::cost::suggested_limits_for_formula`]); callers that
//! own a wall clock add a deadline on top.

use crate::eval::{eval, EvalError, QueryResult};
use dco_core::guard::{run_guarded, EvalError as GuardError, GuardLimits, Guarded};
use dco_logic::{parse_formula, Formula, ParseError};
use std::fmt;

/// Why a fault-tolerant evaluation did not produce a result.
#[derive(Debug)]
pub enum TryEvalError {
    /// The query text did not parse (string entry point only).
    Parse(ParseError),
    /// A semantic error independent of resources (unknown predicate,
    /// arity mismatch, not in the dense-order fragment).
    Invalid(EvalError),
    /// The guard tripped or a panic was contained; carries the typed fault
    /// and the partial-progress statistics.
    Fault(GuardError),
}

impl fmt::Display for TryEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryEvalError::Parse(e) => write!(f, "parse error: {e}"),
            TryEvalError::Invalid(e) => write!(f, "invalid query: {e}"),
            TryEvalError::Fault(e) => write!(f, "evaluation fault: {e}"),
        }
    }
}

impl std::error::Error for TryEvalError {}

/// Evaluate under the analyzer-suggested default budgets.
pub fn try_eval(db: &dco_core::prelude::Database, formula: &Formula) -> TryResult {
    try_eval_with(db, formula, default_limits(db, formula))
}

/// Shorthand for the result of the `try_*` entry points.
pub type TryResult = Result<Guarded<QueryResult>, TryEvalError>;

/// Evaluate under explicit guard limits.
pub fn try_eval_with(
    db: &dco_core::prelude::Database,
    formula: &Formula,
    limits: GuardLimits,
) -> TryResult {
    match run_guarded(limits, || eval(db, formula)) {
        Ok(guarded) => match guarded.value {
            Ok(value) => Ok(Guarded {
                value,
                stats: guarded.stats,
            }),
            Err(e) => Err(TryEvalError::Invalid(e)),
        },
        Err(fault) => Err(TryEvalError::Fault(fault)),
    }
}

/// Parse, then evaluate under the analyzer-suggested default budgets.
pub fn try_eval_str(db: &dco_core::prelude::Database, src: &str) -> TryResult {
    let formula = parse_formula(src).map_err(TryEvalError::Parse)?;
    try_eval(db, &formula)
}

/// The default guard limits for `formula` over `db`: budgets from the
/// static cost pass, no deadline.
pub fn default_limits(db: &dco_core::prelude::Database, formula: &Formula) -> GuardLimits {
    dco_analysis::cost::suggested_limits_for_formula(formula, db.constants())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::guard::EvalErrorKind;
    use dco_core::prelude::*;
    use std::time::Duration;

    fn db() -> Database {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        Database::new(Schema::new().with("R", 2)).with("R", tri)
    }

    #[test]
    fn fault_free_guarded_run_matches_unguarded() {
        let src = "exists y . (R(x, y) & x < y)";
        let unguarded = crate::eval_str(&db(), src).unwrap();
        let guarded = try_eval_str(&db(), src).unwrap();
        assert_eq!(guarded.value.columns, unguarded.columns);
        assert_eq!(guarded.value.relation, unguarded.relation);
        assert!(guarded.stats.probes > 0, "evaluation must hit probes");
    }

    #[test]
    fn tight_budget_returns_typed_error_with_stats() {
        let formula = dco_logic::parse_formula("!(R(x, y) | R(y, x) | x < y)").unwrap();
        let err =
            try_eval_with(&db(), &formula, GuardLimits::none().with_max_tuples(1)).unwrap_err();
        let TryEvalError::Fault(f) = err else {
            panic!("expected a guard fault");
        };
        assert!(matches!(f.kind, EvalErrorKind::BudgetExceeded { .. }));
        assert!(f.stats.tuples_materialized >= 2);
    }

    #[test]
    fn zero_deadline_trips_fast() {
        let formula = dco_logic::parse_formula("!(R(x, y) | R(y, x))").unwrap();
        let err = try_eval_with(
            &db(),
            &formula,
            GuardLimits::none().with_deadline(Duration::ZERO),
        )
        .unwrap_err();
        let TryEvalError::Fault(f) = err else {
            panic!("expected a guard fault");
        };
        assert!(matches!(f.kind, EvalErrorKind::DeadlineExceeded { .. }));
    }

    #[test]
    fn semantic_errors_stay_typed_not_faults() {
        let err = try_eval_str(&db(), "Zap(x)").unwrap_err();
        assert!(matches!(
            err,
            TryEvalError::Invalid(EvalError::UnknownPredicate(_))
        ));
    }
}
