//! Property tests for the FO evaluator: the closed-form symbolic answer is
//! compared against a *reference semantics* — direct point-level evaluation
//! of the formula with quantifiers ranging over a sufficient sample set
//! (cell representatives, which is exact by genericity).

use dco_core::prelude::*;
use dco_fo::eval_in_ctx;
use dco_logic::{ArgTerm, Formula, LinExpr};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Random formulas over one binary predicate R and variables x, y (+ bound
/// z), depth-limited.
fn arb_formula(depth: u32) -> BoxedStrategy<Formula> {
    let atom = prop_oneof![
        Just(Formula::pred("R", &["x", "y"])),
        Just(Formula::pred("R", &["y", "x"])),
        Just(Formula::pred("R", &["x", "x"])),
        Just(Formula::cmp_vars("x", RawOp::Lt, "y")),
        Just(Formula::cmp_vars("y", RawOp::Le, "x")),
        (-4i64..4).prop_map(|c| Formula::cmp_const("x", RawOp::Lt, rat(c as i128, 1))),
        (-4i64..4).prop_map(|c| Formula::cmp_const("y", RawOp::Eq, rat(c as i128, 1))),
    ];
    if depth == 0 {
        return atom.boxed();
    }
    let sub = arb_formula(depth - 1);
    prop_oneof![
        4 => atom,
        2 => (sub.clone(), sub.clone()).prop_map(|(a, b)| Formula::and(a, b)),
        2 => (sub.clone(), sub.clone()).prop_map(|(a, b)| Formula::or(a, b)),
        2 => sub.clone().prop_map(Formula::not),
        1 => sub.clone().prop_map(|f| Formula::Exists(vec!["z".to_string()], Box::new(swap_var(&f, "y", "z")))),
        1 => sub.prop_map(|f| Formula::Forall(vec!["z".to_string()], Box::new(swap_var(&f, "x", "z")))),
    ]
    .boxed()
}

/// Rename free occurrences (crude but adequate for generated shapes).
fn swap_var(f: &Formula, from: &str, to: &str) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Compare(l, op, r) => {
            Formula::Compare(l.rename_var(from, to), *op, r.rename_var(from, to))
        }
        Formula::Pred(n, args) => Formula::Pred(
            n.clone(),
            args.iter()
                .map(|a| match a {
                    ArgTerm::Var(v) if v == from => ArgTerm::Var(to.to_string()),
                    o => o.clone(),
                })
                .collect(),
        ),
        Formula::Not(g) => Formula::not(swap_var(g, from, to)),
        Formula::And(gs) => Formula::And(gs.iter().map(|g| swap_var(g, from, to)).collect()),
        Formula::Or(gs) => Formula::Or(gs.iter().map(|g| swap_var(g, from, to)).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(swap_var(a, from, to)),
            Box::new(swap_var(b, from, to)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(swap_var(a, from, to)),
            Box::new(swap_var(b, from, to)),
        ),
        Formula::Exists(vs, g) if !vs.iter().any(|v| v == from) => {
            Formula::Exists(vs.clone(), Box::new(swap_var(g, from, to)))
        }
        Formula::Forall(vs, g) if !vs.iter().any(|v| v == from) => {
            Formula::Forall(vs.clone(), Box::new(swap_var(g, from, to)))
        }
        other => other.clone(),
    }
}

/// A small random database over one binary relation.
fn arb_db() -> impl Strategy<Value = Database> {
    prop::collection::vec(
        (
            -4i64..4,
            1i64..3,
            -4i64..4,
            1i64..3,
            prop::bool::ANY, // wedge?
        ),
        0..3,
    )
    .prop_map(|parts| {
        let tuples = parts.into_iter().flat_map(|(x, w, y, h, wedge)| {
            let mut raws = vec![
                RawAtom::new(Term::cst(rat(x as i128, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat((x + w) as i128, 1))),
                RawAtom::new(Term::cst(rat(y as i128, 1)), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat((y + h) as i128, 1))),
            ];
            if wedge {
                raws.push(RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1)));
            }
            GeneralizedTuple::from_raw(2, raws)
        });
        Database::new(Schema::new().with("R", 2))
            .with("R", GeneralizedRelation::from_tuples(2, tuples))
    })
}

/// Reference semantics: evaluate the formula at a full variable assignment,
/// with quantifiers ranging over 1-cell sample points of the combined
/// constant set — exact for generic (automorphism-closed) truths.
fn reference_eval(f: &Formula, db: &Database, env: &BTreeMap<String, Rational>) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Compare(l, op, r) => {
            let lv = eval_linexpr(l, env);
            let rv = eval_linexpr(r, env);
            op.eval(&lv, &rv)
        }
        Formula::Pred(name, args) => {
            let rel = db.get(name).expect("known predicate");
            let point: Vec<Rational> = args
                .iter()
                .map(|a| match a {
                    ArgTerm::Var(v) => env[v],
                    ArgTerm::Const(c) => *c,
                })
                .collect();
            rel.contains_point(&point)
        }
        Formula::Not(g) => !reference_eval(g, db, env),
        Formula::And(gs) => gs.iter().all(|g| reference_eval(g, db, env)),
        Formula::Or(gs) => gs.iter().any(|g| reference_eval(g, db, env)),
        Formula::Implies(a, b) => !reference_eval(a, db, env) || reference_eval(b, db, env),
        Formula::Iff(a, b) => reference_eval(a, db, env) == reference_eval(b, db, env),
        Formula::Exists(vs, g) => quantifier(vs, g, db, env, true),
        Formula::Forall(vs, g) => quantifier(vs, g, db, env, false),
    }
}

fn eval_linexpr(e: &LinExpr, env: &BTreeMap<String, Rational>) -> Rational {
    let mut acc = e.constant;
    for (v, c) in &e.coeffs {
        acc = acc + (c * &env[v]);
    }
    acc
}

/// Constants mentioned in a formula (compare sides and predicate args).
fn formula_consts(f: &Formula, out: &mut std::collections::BTreeSet<Rational>) {
    f.walk(&mut |g| match g {
        Formula::Compare(l, _, r) => {
            out.insert(l.constant);
            out.insert(r.constant);
        }
        Formula::Pred(_, args) => {
            for a in args {
                if let ArgTerm::Const(c) = a {
                    out.insert(*c);
                }
            }
        }
        _ => {}
    });
}

fn quantifier(
    vs: &[String],
    g: &Formula,
    db: &Database,
    env: &BTreeMap<String, Rational>,
    existential: bool,
) -> bool {
    if vs.is_empty() {
        return reference_eval(g, db, env);
    }
    let mut consts: std::collections::BTreeSet<Rational> = db
        .constants()
        .into_iter()
        .chain(env.values().copied())
        .collect();
    formula_consts(g, &mut consts);
    let space = CellSpace::new(1, consts);
    let samples: Vec<Rational> = space
        .enumerate()
        .iter()
        .map(|c| space.sample(c)[0])
        .collect();
    let rest = &vs[1..];
    for s in samples {
        let mut env2 = env.clone();
        env2.insert(vs[0].clone(), s);
        let v = quantifier(rest, g, db, &env2, existential);
        if v == existential {
            return existential;
        }
    }
    !existential
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn symbolic_matches_reference(f in arb_formula(2), db in arb_db(), px in -5i64..5, py in -5i64..5) {
        let ctx = vec!["x".to_string(), "y".to_string()];
        let rel = eval_in_ctx(&db, &f, &ctx).expect("dense-order formula evaluates");
        let p = vec![rat(px as i128, 1), rat(py as i128, 1)];
        let mut env = BTreeMap::new();
        env.insert("x".to_string(), p[0]);
        env.insert("y".to_string(), p[1]);
        let expect = reference_eval(&f, &db, &env);
        prop_assert_eq!(
            rel.contains_point(&p), expect,
            "formula {} at {:?} over {}", f, p, db
        );
    }

    #[test]
    fn negation_is_complement(f in arb_formula(1), db in arb_db()) {
        let ctx = vec!["x".to_string(), "y".to_string()];
        let pos = eval_in_ctx(&db, &f, &ctx).expect("evaluates");
        let neg = eval_in_ctx(&db, &Formula::not(f), &ctx).expect("evaluates");
        prop_assert!(neg.equivalent(&pos.complement()));
    }

    #[test]
    fn nnf_preserves_semantics(f in arb_formula(2), db in arb_db()) {
        let ctx = vec!["x".to_string(), "y".to_string()];
        let base = eval_in_ctx(&db, &f, &ctx).expect("evaluates");
        let nnf = dco_logic::to_nnf(&f);
        let transformed = eval_in_ctx(&db, &nnf, &ctx).expect("evaluates");
        prop_assert!(transformed.equivalent(&base), "{f}  vs NNF  {nnf}");
    }

    #[test]
    fn prenex_preserves_semantics(f in arb_formula(2), db in arb_db()) {
        let ctx = vec!["x".to_string(), "y".to_string()];
        let base = eval_in_ctx(&db, &f, &ctx).expect("evaluates");
        let (prefix, matrix) = dco_logic::to_prenex(&f);
        let pf = dco_logic::from_prenex(&prefix, &matrix);
        let transformed = eval_in_ctx(&db, &pf, &ctx).expect("evaluates");
        prop_assert!(transformed.equivalent(&base), "{f}  vs prenex  {pf}");
    }

    #[test]
    fn excluded_middle(f in arb_formula(1), db in arb_db()) {
        let ctx = vec!["x".to_string(), "y".to_string()];
        let pos = eval_in_ctx(&db, &f, &ctx).expect("evaluates");
        let neg = eval_in_ctx(&db, &Formula::not(f.clone()), &ctx).expect("evaluates");
        prop_assert!(pos.union(&neg).equivalent(&GeneralizedRelation::universe(2)));
        prop_assert!(pos.intersect(&neg).is_empty());
    }
}

// The parallel layer must return the same canonical DNF as a sequential
// run — structural equality, not mere equivalence — for arbitrary
// formulas. Run with more cases than the semantic suite: these checks are
// cheap (two evaluations, no reference semantics).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parallel_eval_identical_to_sequential(f in arb_formula(2), db in arb_db()) {
        let ctx = vec!["x".to_string(), "y".to_string()];
        let seq = with_eval_config(EvalConfig::sequential(), || eval_in_ctx(&db, &f, &ctx))
            .expect("evaluates");
        let par = with_eval_config(
            EvalConfig { threads: 4, parallel_threshold: 1, ..EvalConfig::default() },
            || eval_in_ctx(&db, &f, &ctx),
        )
        .expect("evaluates");
        prop_assert_eq!(seq, par, "parallel DNF diverges for {}", f);
    }

    #[test]
    fn interned_kernel_identical_to_seed_kernel(f in arb_formula(2), db in arb_db()) {
        // The fast paths (incremental satisfiability, box-pruned joins)
        // must be structurally invisible to FO evaluation: same canonical
        // DNF, not merely the same point set.
        let ctx = vec!["x".to_string(), "y".to_string()];
        let seed = with_eval_config(EvalConfig::seed_kernel(), || eval_in_ctx(&db, &f, &ctx))
            .expect("evaluates");
        let interned = with_eval_config(EvalConfig::interned_kernel(), || eval_in_ctx(&db, &f, &ctx))
            .expect("evaluates");
        prop_assert_eq!(seed, interned, "kernel configs diverge for {}", f);
    }
}
