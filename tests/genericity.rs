//! Definition 3.1 as a property test: every evaluator in the workspace
//! defines *queries* — mappings closed under order automorphisms of Q.

use dco::datalog::{parse_program, run as run_datalog};
use dco::fo::{check_generic, check_generic_fixing, eval as eval_fo, GenericityOutcome};
use dco::prelude::*;

fn triangle_db() -> Database {
    let tri = GeneralizedRelation::from_raw(
        2,
        vec![
            RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
            RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
        ],
    );
    Database::new(Schema::new().with("R", 2)).with("R", tri)
}

#[test]
fn fo_queries_are_generic() {
    let db = triangle_db();
    for src in [
        "exists y . R(x, y)",
        "exists y . (R(x, y) & x < y)",
        "!R(x, x)",
    ] {
        let f = parse_formula(src).unwrap();
        let out = check_generic(&db, 6, 0xBEEF, |d| eval_fo(d, &f).unwrap().relation);
        assert_eq!(out, GenericityOutcome::Generic, "query {src}");
    }
    // A query mentioning the constant 5 is C-generic: closed under
    // automorphisms FIXING 5 (and it is NOT closed under arbitrary ones —
    // both directions checked).
    let f = parse_formula("forall y . (R(x, y) -> y >= 5)").unwrap();
    let out = check_generic_fixing(&db, &[rat(5, 1)], 6, 0xBEEF, |d| {
        eval_fo(d, &f).unwrap().relation
    });
    assert_eq!(out, GenericityOutcome::Generic, "C-generic query");
    let out = check_generic(&db, 8, 0xBEEF, |d| eval_fo(d, &f).unwrap().relation);
    assert!(matches!(out, GenericityOutcome::Violation(_)));
}

#[test]
fn datalog_fixpoints_are_generic() {
    let program = parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .unwrap();
    let e = GeneralizedRelation::from_points(
        2,
        vec![
            vec![rat(1, 1), rat(2, 1)],
            vec![rat(2, 1), rat(3, 1)],
            vec![rat(5, 1), rat(3, 1)],
        ],
    );
    let db = Database::new(Schema::new().with("e", 2)).with("e", e);
    let out = check_generic(&db, 5, 7, |d| {
        run_datalog(&program, d)
            .expect("fixpoint")
            .database
            .get("tc")
            .expect("tc")
            .clone()
    });
    assert_eq!(out, GenericityOutcome::Generic);
}

#[test]
fn foplus_order_fragment_is_generic() {
    // An FO+ query that stays in the order fragment defines a query; the
    // linear evaluator must commute with automorphisms on it.
    let db = triangle_db();
    let f = parse_formula("exists y . (R(x, y) & x < y)").unwrap();
    let out = check_generic(&db, 5, 99, |d| {
        eval_linear(d, &f)
            .expect("evaluates")
            .relation
            .to_dense()
            .expect("order fragment")
    });
    assert_eq!(out, GenericityOutcome::Generic);
}

#[test]
fn genuine_arithmetic_breaks_genericity() {
    // The paper: FO+ expresses mappings that are NOT queries. `x + x = 1`
    // pins x = 1/2, which automorphisms move — the harness must catch it.
    let db = triangle_db();
    let f = parse_formula("R(x, x) & x + x = 1").unwrap();
    let out = check_generic(&db, 10, 3, |d| {
        eval_linear(d, &f)
            .expect("evaluates")
            .relation
            .to_dense()
            .unwrap_or_else(|| GeneralizedRelation::from_points(1, vec![vec![rat(1, 2)]]))
    });
    assert!(matches!(out, GenericityOutcome::Violation(_)));
}

#[test]
fn parity_program_is_generic() {
    use dco::datalog::programs::cardinality_is_even;
    // parity must depend only on cardinality, not on values
    let sets = [
        vec![rat(1, 1), rat(2, 1), rat(3, 1)],
        vec![rat(-100, 1), rat(1, 3), rat(999, 1)],
    ];
    let answers: Vec<bool> = sets
        .iter()
        .map(|vals| {
            let s = GeneralizedRelation::from_points(
                1,
                vals.iter().map(|v| vec![*v]).collect::<Vec<_>>(),
            );
            cardinality_is_even(&s).unwrap()
        })
        .collect();
    assert_eq!(answers[0], answers[1]);
}
