//! Cross-engine agreement: FO vs FO+ on the order fragment, FO vs
//! Datalog¬ on non-recursive programs, C-CALC₀ vs FO, and C-CALC₁ vs
//! Datalog¬ on reachability.

use dco::complex::{CCalc, CFormula, RatTerm, SetRef};
use dco::prelude::*;

fn triangle_db() -> Database {
    let tri = GeneralizedRelation::from_raw(
        2,
        vec![
            RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
            RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
        ],
    );
    Database::new(Schema::new().with("R", 2)).with("R", tri)
}

#[test]
fn fo_and_foplus_agree_on_order_queries() {
    let db = triangle_db();
    for src in [
        "exists y . R(x, y)",
        "exists y . (R(x, y) & x < y)",
        "forall y . (R(x, y) -> y >= 5)",
        "R(x, x) & !(x = 3)",
        "exists y z . (R(y, z) & y < x & x < z)",
    ] {
        let f = parse_formula(src).unwrap();
        let fo = eval_fo(&db, &f).unwrap().relation;
        let lin = eval_linear(&db, &f)
            .unwrap()
            .relation
            .to_dense()
            .unwrap_or_else(|| panic!("{src}: FO+ left the order fragment"));
        assert!(fo.equivalent(&lin), "{src}: engines disagree");
    }
}

#[test]
fn fo_and_datalog_agree_on_nonrecursive_programs() {
    let db = triangle_db();
    // Datalog: q(x) :- R(x, y), y < 7.   FO: ∃y (R(x,y) ∧ y < 7)
    let program = parse_program("q(x) :- R(x, y), y < 7.\n").unwrap();
    let fix = run_datalog(&program, &db).unwrap();
    let datalog_q = fix.database.get("q").unwrap().clone();
    let fo_q = dco::fo::eval_str(&db, "exists y . (R(x, y) & y < 7)")
        .unwrap()
        .relation
        .narrow(1);
    assert!(datalog_q.equivalent(&fo_q));
}

#[test]
fn ccalc_height0_agrees_with_fo_on_sentences() {
    // finite inputs: the C-CALC cell semantics is exact
    let e = GeneralizedRelation::from_points(
        2,
        vec![vec![rat(1, 1), rat(2, 1)], vec![rat(2, 1), rat(3, 1)]],
    );
    let db = Database::new(Schema::new().with("e", 2)).with("e", e);
    use CFormula as F;
    // ∃x∀y ¬e(y, x)  — "some vertex has no incoming edge"
    let ccalc = F::ExistsRat(
        "x".into(),
        Box::new(F::ForallRat(
            "y".into(),
            Box::new(F::Not(Box::new(F::Pred(
                "e".into(),
                vec![RatTerm::var("y"), RatTerm::var("x")],
            )))),
        )),
    );
    let mut ev = CCalc::new(&db);
    let c_answer = ev.eval_sentence(&ccalc).unwrap();
    let fo_answer = dco::fo::eval_str(&db, "exists x . forall y . !e(y, x)")
        .unwrap()
        .as_bool()
        .unwrap();
    assert_eq!(c_answer, fo_answer);
    assert!(c_answer);
}

#[test]
fn ccalc1_reachability_agrees_with_datalog_tc() {
    let edges = [(1, 2), (2, 3), (5, 4)];
    let e = GeneralizedRelation::from_points(
        2,
        edges
            .iter()
            .map(|&(a, b)| vec![rat(a, 1), rat(b, 1)])
            .collect::<Vec<_>>(),
    );
    let db = Database::new(Schema::new().with("e", 2)).with("e", e);
    let program = parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .unwrap();
    let tc = run_datalog(&program, &db)
        .unwrap()
        .database
        .get("tc")
        .unwrap()
        .clone();

    use CFormula as F;
    let reach = |a: i64, b: i64| {
        let closed = F::ForallRat(
            "u".into(),
            Box::new(F::ForallRat(
                "v".into(),
                Box::new(CFormula::implies(
                    F::And(vec![
                        F::MemTuple(vec![RatTerm::var("u")], SetRef::Var("S".into())),
                        F::Pred("e".into(), vec![RatTerm::var("u"), RatTerm::var("v")]),
                    ]),
                    F::MemTuple(vec![RatTerm::var("v")], SetRef::Var("S".into())),
                )),
            )),
        );
        F::ForallSet(
            "S".into(),
            1,
            Box::new(CFormula::implies(
                F::And(vec![
                    F::MemTuple(
                        vec![RatTerm::cst(rat(a as i128, 1))],
                        SetRef::Var("S".into()),
                    ),
                    closed,
                ]),
                F::MemTuple(
                    vec![RatTerm::cst(rat(b as i128, 1))],
                    SetRef::Var("S".into()),
                ),
            )),
        )
    };
    for a in [1i64, 2, 3, 4, 5] {
        for b in [1i64, 2, 3, 4, 5] {
            if a == b {
                continue;
            }
            let mut ev = CCalc::new(&db);
            let c = ev.eval_sentence(&reach(a, b)).unwrap();
            let d = tc.contains_point(&[rat(a as i128, 1), rat(b as i128, 1)]);
            assert_eq!(c, d, "reach({a},{b})");
        }
    }
}

#[test]
fn parser_and_builder_formulas_agree() {
    let db = triangle_db();
    let parsed = parse_formula("exists y . (R(x, y) & x < y)").unwrap();
    let built = Formula::exists(
        &["y"],
        Formula::and(
            Formula::pred("R", &["x", "y"]),
            Formula::cmp_vars("x", RawOp::Lt, "y"),
        ),
    );
    let a = eval_fo(&db, &parsed).unwrap().relation;
    let b = eval_fo(&db, &built).unwrap().relation;
    assert!(a.equivalent(&b));
}
