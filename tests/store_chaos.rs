//! Crash-recovery chaos suite for the store (`dco_store`).
//!
//! Uses the guard layer's deterministic fault injection to kill writes at
//! the three durability-critical instants — mid-WAL-append (torn record
//! on disk), pre-fsync (complete record, no durability point), and
//! mid-snapshot-write (torn temp file) — then asserts the recovery
//! contract from §3's standard-encoding view of the database:
//!
//! > Reopening the store yields **exactly** the committed catalog
//! > (acknowledged writes), except that a fault *after* the full record
//! > hit the disk may additionally surface the single in-flight
//! > operation. Torn records are never decoded; an unhealthy store
//! > refuses writes until reopened; and a fault-free reopen is the
//! > identity (snapshot + WAL replay ≡ pre-close state).
//!
//! Fully deterministic: cases derive from the same pinned seed scheme as
//! the evaluator chaos suite (`DCO_CHAOS_SEED`, default `0xDC0DB`).

use dco::core::guard::faults::{injection_enabled, FaultPlan, InjectedFault};
use dco::prelude::*;
use dco::store::{LogOp, Store, StoreError, StoreOptions};
use std::path::PathBuf;

/// Number of seeded cases; keep in sync with the CI chaos-store job.
const CASES: u64 = 128;

fn seed() -> u64 {
    std::env::var("DCO_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDC0DB)
}

/// splitmix64, same scatter function as the evaluator chaos suite.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn interval(lo: i128, hi: i128) -> GeneralizedRelation {
    GeneralizedRelation::from_raw(
        1,
        vec![
            RawAtom::new(Term::cst(rat(lo, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(hi, 1))),
        ],
    )
}

/// A random committed prefix: create 1–3 relations, then a few inserts/
/// replaces. Returns the ops actually acknowledged.
fn committed_script(state: &mut u64) -> Vec<LogOp> {
    let nrels = 1 + splitmix(state) % 3;
    let mut ops = Vec::new();
    for r in 0..nrels {
        ops.push(LogOp::Create {
            name: format!("r{r}"),
            arity: 1,
        });
    }
    let nwrites = splitmix(state) % 6;
    for _ in 0..nwrites {
        let r = splitmix(state) % nrels;
        let lo = (splitmix(state) % 20) as i128 - 10;
        let len = 1 + (splitmix(state) % 5) as i128;
        let rel = interval(lo, lo + len);
        ops.push(if splitmix(state).is_multiple_of(4) {
            LogOp::Replace {
                name: format!("r{r}"),
                rel,
            }
        } else {
            LogOp::InsertTuples {
                name: format!("r{r}"),
                rel,
            }
        });
    }
    ops
}

fn tmpdir(case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dco-store-chaos-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn seeded_crash_recovery_sweep() {
    if !injection_enabled() {
        eprintln!(
            "fault injection compiled out (release without the fault-injection feature); skipping"
        );
        return;
    }
    let mut state = seed();
    let mut outcomes = [0u64; 3]; // [wal-append, wal-fsync, snapshot-write]
    for case in 0..CASES {
        let dir = tmpdir(case);
        let opts = StoreOptions {
            snapshot_every: 0, // snapshots only where the case forces one
            ..StoreOptions::default()
        };
        let store = Store::open(&dir, opts.clone()).unwrap();

        // Committed prefix: every op here is acknowledged and fsynced.
        let script = committed_script(&mut state);
        for op in &script {
            store.apply(op.clone()).unwrap();
        }
        // Maybe fold part of the history into a snapshot, so recovery
        // exercises snapshot + replay rather than pure replay.
        if splitmix(&mut state).is_multiple_of(2) {
            store.snapshot().unwrap();
        }
        let committed = store.read().db.clone();
        let committed_seq = store.read().seq;

        // The in-flight op the crash will interrupt.
        let inflight = LogOp::InsertTuples {
            name: "r0".to_string(),
            rel: interval(100, 101),
        };

        let (site, slot) = match splitmix(&mut state) % 3 {
            0 => (ProbeSite::WalAppend, 0),
            1 => (ProbeSite::WalFsync, 1),
            _ => (ProbeSite::SnapshotWrite, 2),
        };
        outcomes[slot] += 1;
        let fault = match splitmix(&mut state) % 3 {
            0 => InjectedFault::Panic,
            1 => InjectedFault::Overflow,
            _ => InjectedFault::Cancel,
        };
        let limits = GuardLimits::none().with_fault(FaultPlan::new(Some(site), 1, fault));

        // Crash exactly at the armed site. All three fault kinds unwind;
        // run_guarded contains the unwind and reports a typed error.
        let crashed: Result<Guarded<()>, GuardError> = run_guarded(limits, || {
            if site == ProbeSite::SnapshotWrite {
                let _ = store.snapshot();
            } else {
                let _ = store.apply(inflight.clone());
            }
        });
        assert!(
            crashed.is_err(),
            "case {case}: armed fault at {site} did not fire"
        );

        // Invariant 1: the wounded store refuses writes, readers still work.
        assert!(
            !store.is_healthy(),
            "case {case}: store claims health after crash"
        );
        assert!(
            matches!(store.create("late", 1), Err(StoreError::Unhealthy)),
            "case {case}: write accepted on unhealthy store"
        );
        assert_eq!(
            store.read().db,
            committed,
            "case {case}: reader saw a state change from an unacknowledged write"
        );
        drop(store);

        // Invariant 2: recovery restores exactly the committed state —
        // plus, only for the pre-fsync site, possibly the in-flight op
        // (its record was fully on disk when the crash hit).
        let recovered = Store::open(&dir, opts.clone()).unwrap();
        let rec_db = recovered.read().db.clone();
        match site {
            ProbeSite::WalFsync => {
                let mut with_inflight = committed.clone();
                let cur = with_inflight.get("r0").unwrap().clone();
                with_inflight
                    .set("r0", cur.union(&interval(100, 101)))
                    .unwrap();
                assert!(
                    rec_db == committed || rec_db == with_inflight,
                    "case {case}: recovery after pre-fsync crash produced a third state"
                );
            }
            _ => {
                assert_eq!(
                    rec_db, committed,
                    "case {case}: recovery after {site} crash diverged from committed state"
                );
                assert_eq!(
                    recovered.read().seq,
                    committed_seq,
                    "case {case}: seq drifted"
                );
            }
        }

        // Invariant 3: the recovered store is fully writable again, and a
        // fault-free close/reopen (snapshot + replay) is the identity.
        recovered.create("post", 2).unwrap();
        recovered.snapshot().unwrap();
        let expected = recovered.read().db.clone();
        let expected_seq = recovered.read().seq;
        drop(recovered);
        let reopened = Store::open(&dir, opts).unwrap();
        assert_eq!(
            reopened.read().db,
            expected,
            "case {case}: clean reopen not identity"
        );
        assert_eq!(reopened.read().seq, expected_seq);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
    eprintln!(
        "store chaos: {CASES} cases — wal-append {}, wal-fsync {}, snapshot-write {}",
        outcomes[0], outcomes[1], outcomes[2]
    );
    assert!(
        outcomes.iter().all(|&n| n > 0),
        "seed never exercised one of the probe sites; widen the sweep"
    );
}

/// Multi-writer group-commit kills: K writers on disjoint relations,
/// every thread armed with the same seeded fault at a *batch* site —
/// mid-batch-append, pre-batch-fsync, or mid-shard-publication. The
/// writer that happens to lead the first batch crashes there; its drop
/// guard must fail every waiting committer's ticket (no thread parks
/// forever) and wound the store. The recovery contract is per relation:
///
/// > recovered(r) is a *program-order prefix* of the inserts issued to
/// > `r`, and `acked(r) ≤ recovered(r) ≤ issued(r)` — never a
/// > partially-acknowledged batch, never a reordering.
///
/// Acked-only-after-fsync makes the lower bound hold at the
/// `GroupCommitFsync` site (records complete on disk, durability
/// unforced); seq-ordered batch writes make the prefix property hold at
/// `WalAppend` (torn tail); publish-after-durable makes `ShardPublish`
/// recover the *whole* batch even though nobody was acked.
#[test]
fn multi_writer_group_commit_kills() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    if !injection_enabled() {
        eprintln!(
            "fault injection compiled out (release without the fault-injection feature); skipping"
        );
        return;
    }
    const WRITERS: usize = 3;
    const ISSUES: i128 = 6;
    const MW_CASES: u64 = 12;

    let mut state = seed() ^ 0x6D77; // decorrelate from the single-writer sweep
    for case in 0..MW_CASES {
        let dir = tmpdir(1_000_000 + case);
        let opts = StoreOptions {
            snapshot_every: 0,
            ..StoreOptions::default()
        };
        let store = Store::open(&dir, opts.clone()).unwrap();
        for w in 0..WRITERS {
            store.create(&format!("w{w}"), 1).unwrap();
        }

        // Hit count 1: leadership rotates between threads and plans are
        // thread-local, so only the first hit is guaranteed to
        // accumulate on whichever thread leads the first batch.
        let (site, hit) = match splitmix(&mut state) % 3 {
            0 => (ProbeSite::WalAppend, 1u64),
            1 => (ProbeSite::GroupCommitFsync, 1),
            _ => (ProbeSite::ShardPublish, 1),
        };
        let fault = match splitmix(&mut state) % 3 {
            0 => InjectedFault::Panic,
            1 => InjectedFault::Overflow,
            _ => InjectedFault::Cancel,
        };

        // Every writer arms the same plan; only whoever leads a batch
        // reaches the probe, so the crashing thread is schedule-
        // dependent — the invariants must hold regardless.
        let acked: Vec<Arc<AtomicU64>> =
            (0..WRITERS).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let issued: Vec<Arc<AtomicU64>> =
            (0..WRITERS).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut threads = Vec::new();
        for w in 0..WRITERS {
            let store = store.clone();
            let acked = acked[w].clone();
            let issued = issued[w].clone();
            threads.push(std::thread::spawn(move || {
                let limits = GuardLimits::none().with_fault(FaultPlan::new(Some(site), hit, fault));
                let crashed: Result<Guarded<()>, GuardError> = run_guarded(limits, || {
                    for i in 0..ISSUES {
                        let k = w as i128 * 100 + i;
                        issued.fetch_add(1, Ordering::SeqCst);
                        match store.insert(&format!("w{w}"), interval(3 * k, 3 * k + 1)) {
                            Ok(_) => {
                                acked.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(StoreError::Unhealthy) => break,
                            Err(e) => panic!("writer {w}: unexpected error {e}"),
                        }
                    }
                });
                crashed.is_err()
            }));
        }
        let mut any_crashed = false;
        for t in threads {
            any_crashed |= t.join().expect("writer thread must not park forever");
        }
        assert!(
            any_crashed,
            "case {case}: armed fault at {site} (hit {hit}) never fired"
        );
        assert!(
            !store.is_healthy(),
            "case {case}: store healthy after crash"
        );
        assert!(
            matches!(store.create("late", 1), Err(StoreError::Unhealthy)),
            "case {case}: write accepted on wounded store"
        );
        drop(store);

        // Recovery: per-relation program-order prefix, bounded by what
        // was acknowledged (below) and issued (above).
        let recovered = Store::open(&dir, opts).unwrap();
        let db = recovered.read().db.clone();
        for w in 0..WRITERS {
            let a = acked[w].load(Ordering::SeqCst) as i128;
            let iss = issued[w].load(Ordering::SeqCst) as i128;
            let rel = db.get(&format!("w{w}")).unwrap();
            let n = rel.tuples().len() as i128;
            assert!(
                a <= n && n <= iss,
                "case {case} writer {w}: acked {a} <= recovered {n} <= issued {iss} violated"
            );
            // Prefix, not just count: exactly inserts 0..n survive.
            for i in 0..iss {
                let k = w as i128 * 100 + i;
                let inside = rel.contains_point(&[rat(6 * k + 1, 2)]);
                assert_eq!(
                    inside,
                    i < n,
                    "case {case} writer {w}: insert {i} {} but {n} recovered",
                    if inside { "present" } else { "missing" }
                );
            }
        }
        // The recovered store is writable and reopens cleanly.
        recovered.create("post", 2).unwrap();
        recovered.snapshot().unwrap();
        let expected = recovered.read().db.clone();
        drop(recovered);
        let reopened = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(reopened.read().db, expected, "case {case}: reopen drifted");
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Replica kills: a replica applying a replication batch is killed at a
/// seeded durability site — mid-record append (torn record on the
/// replica's disk), pre-fsync, or mid-shard-publication. The replication
/// apply path runs through the same WAL-append → publish machinery as
/// local commits, so the recovery contract is the same shape:
///
/// > The reopened replica sits at a seq in `[acked, issued]` — at least
/// > everything it acknowledged to the primary, never past what was
/// > streamed — and its database is **exactly** the primary's commit-
/// > order prefix at that seq. Re-syncing from the recovered seq (the
/// > redial protocol: `REPL <last_applied>`) converges it to the
/// > primary, byte-for-byte record re-application included.
#[test]
fn killed_replica_recovers_to_acknowledged_prefix_and_resyncs() {
    use dco::store::ReplBacklog;

    if !injection_enabled() {
        eprintln!(
            "fault injection compiled out (release without the fault-injection feature); skipping"
        );
        return;
    }
    const REPLICA_CASES: u64 = 18;
    const WRITES: i128 = 8;

    let mut state = seed() ^ 0x5EC0; // decorrelate from the other sweeps
    let mut outcomes = [0u64; 3]; // [wal-append, group-commit-fsync, shard-publish]
    for case in 0..REPLICA_CASES {
        let pdir = tmpdir(2_000_000 + case);
        let rdir = tmpdir(3_000_000 + case);
        let opts = StoreOptions {
            snapshot_every: 0,
            ..StoreOptions::default()
        };
        // Primary history: 1 create + WRITES disjoint unit inserts, so
        // the replica invariant is countable — at seq s the relation
        // holds exactly s − 1 tuples, and they are inserts 0..s−1.
        let primary = Store::open(&pdir, opts.clone()).unwrap();
        primary.create("r0", 1).unwrap();
        for i in 0..WRITES {
            primary.insert("r0", interval(3 * i, 3 * i + 1)).unwrap();
        }
        let issued_seq = primary.read().seq;
        let records: Vec<Vec<u8>> = match primary.repl_backlog(1, usize::MAX).unwrap() {
            ReplBacklog::Records { records, .. } => {
                records.iter().map(|r| r.as_ref().clone()).collect()
            }
            ReplBacklog::Checkpoint { .. } => panic!("full backlog must stream as records"),
        };
        assert_eq!(records.len() as u64, issued_seq, "case {case}");

        // Replica applies an acknowledged prefix cleanly...
        let replica = Store::open(&rdir, opts.clone()).unwrap();
        let split = 1 + (splitmix(&mut state) % (records.len() as u64 - 1)) as usize;
        let acked_seq = replica.apply_replicated(records[..split].to_vec()).unwrap();
        assert_eq!(acked_seq, split as u64);

        // ...and is killed partway through applying the rest.
        let (site, slot) = match splitmix(&mut state) % 3 {
            0 => (ProbeSite::WalAppend, 0),
            1 => (ProbeSite::GroupCommitFsync, 1),
            _ => (ProbeSite::ShardPublish, 2),
        };
        outcomes[slot] += 1;
        let fault = match splitmix(&mut state) % 3 {
            0 => InjectedFault::Panic,
            1 => InjectedFault::Overflow,
            _ => InjectedFault::Cancel,
        };
        let limits = GuardLimits::none().with_fault(FaultPlan::new(Some(site), 1, fault));
        let crashed: Result<Guarded<()>, GuardError> = run_guarded(limits, || {
            let _ = replica.apply_replicated(records[split..].to_vec());
        });
        assert!(
            crashed.is_err(),
            "case {case}: armed fault at {site} did not fire"
        );

        // Wounded replica: writes refused, readers pinned to the
        // acknowledged prefix (the generation never swapped).
        assert!(!replica.is_healthy(), "case {case}");
        assert!(
            matches!(replica.create("late", 1), Err(StoreError::Unhealthy)),
            "case {case}: wounded replica accepted a write"
        );
        assert_eq!(
            replica.read().seq,
            acked_seq,
            "case {case}: reader saw an unpublished replication batch"
        );
        drop(replica);

        // Recovery: a commit-order prefix, bounded by ack and issue.
        let recovered = Store::open(&rdir, opts.clone()).unwrap();
        let rseq = recovered.read().seq;
        assert!(
            acked_seq <= rseq && rseq <= issued_seq,
            "case {case}: recovered seq {rseq} outside [{acked_seq}, {issued_seq}]"
        );
        let rel = recovered.read().db.get("r0").unwrap().clone();
        assert_eq!(
            rel.tuples().len() as u64,
            rseq - 1,
            "case {case}: tuple count is not the seq-{rseq} prefix"
        );
        for i in 0..WRITES {
            let inside = rel.contains_point(&[rat(6 * i + 1, 2)]);
            assert_eq!(
                inside,
                (i as u64) < rseq - 1,
                "case {case}: insert {i} {} at recovered seq {rseq}",
                if inside { "present" } else { "missing" }
            );
        }

        // Redial: resume from the recovered seq, converge to the primary.
        if rseq < issued_seq {
            let resume = records[rseq as usize..].to_vec();
            assert_eq!(
                recovered.apply_replicated(resume).unwrap(),
                issued_seq,
                "case {case}: resync did not reach the primary's seq"
            );
        }
        assert_eq!(
            recovered.read().db,
            primary.read().db,
            "case {case}: resynced replica diverged from the primary"
        );
        assert_eq!(recovered.read().seq, issued_seq);
        drop(recovered);
        drop(primary);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&rdir);
    }
    eprintln!(
        "replica chaos: {REPLICA_CASES} cases — wal-append {}, group-commit-fsync {}, shard-publish {}",
        outcomes[0], outcomes[1], outcomes[2]
    );
    assert!(
        outcomes.iter().all(|&n| n > 0),
        "seed never exercised one of the replica kill sites; widen the sweep"
    );
}

/// Torn replication streams: a corrupted, truncated, or gapped batch is
/// rejected *before* the replica mutates anything — validation runs
/// against staged state, so a bad stream leaves the replica healthy,
/// unchanged, and able to apply the pristine records afterwards. (No
/// fault injection needed: the torn bytes themselves are the fault.)
#[test]
fn torn_replication_stream_is_rejected_without_corrupting_the_replica() {
    use dco::store::ReplBacklog;

    let pdir = tmpdir(4_000_000);
    let rdir = tmpdir(4_000_001);
    let opts = StoreOptions {
        snapshot_every: 0,
        ..StoreOptions::default()
    };
    let primary = Store::open(&pdir, opts.clone()).unwrap();
    primary.create("r0", 1).unwrap();
    for i in 0..6 {
        primary.insert("r0", interval(3 * i, 3 * i + 1)).unwrap();
    }
    let records: Vec<Vec<u8>> = match primary.repl_backlog(1, usize::MAX).unwrap() {
        ReplBacklog::Records { records, .. } => {
            records.iter().map(|r| r.as_ref().clone()).collect()
        }
        ReplBacklog::Checkpoint { .. } => panic!("full backlog must stream as records"),
    };

    let replica = Store::open(&rdir, opts.clone()).unwrap();
    replica.apply_replicated(records[..3].to_vec()).unwrap();
    let frozen = replica.read().db.clone();

    // Bit flip anywhere in a sealed record: CRC (or envelope) rejects it.
    let mut flipped = records[3..].to_vec();
    let mid = flipped[0].len() / 2;
    flipped[0][mid] ^= 0x40;
    assert!(
        matches!(replica.apply_replicated(flipped), Err(StoreError::Codec(_))),
        "bit flip must surface as a codec error"
    );
    // Truncated final record: torn, same rejection.
    let mut torn = records[3..].to_vec();
    let last = torn.last_mut().unwrap();
    let cut = last.len() - 3;
    last.truncate(cut);
    assert!(matches!(
        replica.apply_replicated(torn),
        Err(StoreError::Codec(_))
    ));
    // Dropped record: the seq gap is named in a typed refusal.
    match replica.apply_replicated(records[4..].to_vec()) {
        Err(StoreError::Invalid(msg)) => {
            assert!(msg.contains("gap"), "gap refusal must say so: {msg}")
        }
        other => panic!("seq gap accepted: {other:?}"),
    }

    // None of it touched the replica.
    assert!(
        replica.is_healthy(),
        "torn streams must not wound the store"
    );
    assert_eq!(replica.read().seq, 3);
    assert_eq!(replica.read().db, frozen);

    // The pristine records still apply and converge to the primary.
    replica.apply_replicated(records[3..].to_vec()).unwrap();
    assert_eq!(replica.read().db, primary.read().db);
    assert_eq!(replica.read().seq, primary.read().seq);

    drop(replica);
    drop(primary);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

/// A fault armed on a site the operation never reaches must change
/// nothing: the write completes and is acknowledged normally.
#[test]
fn unreached_fault_site_is_a_no_op() {
    if !injection_enabled() {
        return;
    }
    let dir = tmpdir(u64::MAX);
    let store = Store::open(
        &dir,
        StoreOptions {
            snapshot_every: 0,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    store.create("r", 1).unwrap();
    // SnapshotWrite is never hit by a plain insert.
    let limits = GuardLimits::none().with_fault(FaultPlan::new(
        Some(ProbeSite::SnapshotWrite),
        1,
        InjectedFault::Panic,
    ));
    let out: Result<Guarded<Result<u64, StoreError>>, GuardError> =
        run_guarded(limits, || store.insert("r", interval(0, 1)));
    let seq = out.expect("no fault should fire").value.expect("write ok");
    assert_eq!(seq, 2);
    assert!(store.is_healthy());
    assert_eq!(store.read().db.get("r").unwrap(), &interval(0, 1));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
