//! Closure: every operation maps finitely representable databases to
//! finitely representable relations ([KKR90], recalled in §4) — checked by
//! re-encoding every output and decoding it back.

use dco::encoding::{decode, encode};
use dco::prelude::*;

fn reencode_roundtrip(rel: &GeneralizedRelation, name: &str) {
    let arity = rel.arity();
    let db = Database::new(Schema::new().with("Out", arity)).with("Out", rel.clone());
    let text = encode(&db);
    let back = decode(&text).unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
    assert!(
        back.get("Out").expect("Out").equivalent(rel),
        "{name}: re-encoded output differs"
    );
}

fn triangle() -> GeneralizedRelation {
    GeneralizedRelation::from_raw(
        2,
        vec![
            RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
            RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
        ],
    )
}

#[test]
fn algebra_is_closed() {
    let t = triangle();
    let boxy = GeneralizedRelation::from_raw(
        2,
        vec![
            RawAtom::new(Term::cst(rat(2, 1)), RawOp::Lt, Term::var(0)),
            RawAtom::new(Term::var(1), RawOp::Lt, Term::cst(rat(7, 2))),
        ],
    );
    reencode_roundtrip(&t.union(&boxy), "union");
    reencode_roundtrip(&t.intersect(&boxy), "intersect");
    reencode_roundtrip(&t.complement(), "complement");
    reencode_roundtrip(&t.difference(&boxy), "difference");
    reencode_roundtrip(&t.project_out(Var(1)), "projection");
    reencode_roundtrip(
        &t.product(&boxy)
            .project_out(Var(3))
            .project_out(Var(2))
            .narrow(2),
        "product+project",
    );
}

#[test]
fn fo_outputs_are_closed() {
    let db = Database::new(Schema::new().with("R", 2)).with("R", triangle());
    for src in [
        "exists y . R(x, y)",
        "forall y . (R(x, y) -> y >= 5)",
        "!(exists y . (R(x, y) & y < 3))",
    ] {
        let q = dco::fo::eval_str(&db, src).unwrap();
        reencode_roundtrip(&q.relation, src);
    }
}

#[test]
fn datalog_outputs_are_closed() {
    let program = parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .unwrap();
    // infinite dense edges — the fixpoint must stay finitely representable
    let e = GeneralizedRelation::from_raw(
        2,
        vec![
            RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1)),
            RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(1, 1))),
        ],
    );
    let db = Database::new(Schema::new().with("e", 2)).with("e", e);
    let fix = run_datalog(&program, &db).unwrap();
    reencode_roundtrip(fix.database.get("tc").unwrap(), "datalog tc");
}

#[test]
fn no_new_constants_invented() {
    // Dense-order QE reuses constants: every output constant of an FO
    // query occurs in the input or the query — the finite-lattice fact the
    // Datalog termination proof rests on.
    let db = Database::new(Schema::new().with("R", 2)).with("R", triangle());
    let q = dco::fo::eval_str(&db, "exists y . (R(x, y) & y < 7)").unwrap();
    let mut allowed = db.constants();
    allowed.insert(rat(7, 1));
    for c in q.relation.constants() {
        assert!(allowed.contains(&c), "invented constant {c}");
    }
}

#[test]
fn interval_fast_path_agrees_with_algebra() {
    // The 1-D canonical interval representation is an optimized mirror of
    // the generic algebra; they must agree on boolean operations.
    let a = GeneralizedRelation::from_raw(
        1,
        vec![
            RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(rat(5, 1))),
        ],
    );
    let b = GeneralizedRelation::from_raw(
        1,
        vec![
            RawAtom::new(Term::cst(rat(3, 1)), RawOp::Lt, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(9, 1))),
        ],
    );
    let ia = IntervalSet::from_relation(&a);
    let ib = IntervalSet::from_relation(&b);
    assert!(ia.union(&ib).to_relation().equivalent(&a.union(&b)));
    assert!(ia.intersect(&ib).to_relation().equivalent(&a.intersect(&b)));
    assert!(ia.complement().to_relation().equivalent(&a.complement()));
    assert!(ia
        .difference(&ib)
        .to_relation()
        .equivalent(&a.difference(&b)));
}
