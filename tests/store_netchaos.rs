//! Network chaos suite: the full client→server and primary→replica
//! request paths driven through the in-process fault-injection proxy
//! (`dco_store::netfault`).
//!
//! The contract under test is the lifecycle-hardening invariant: **every
//! injected network fault ends in a typed error or a verified-correct
//! reply — never a hang — and a replica fed through a faulty network is
//! always an uncorrupted prefix of the primary that converges once the
//! fault clears.** The proxy injects seeded latency, torn frames,
//! mid-frame hangups, length-prefix corruption, and slow-loris reads;
//! the client's connect/read timeouts and the replica's mid-frame stall
//! detection are what turn each of those into a bounded, typed outcome.
//!
//! Fully deterministic: cases derive from the same pinned seed scheme as
//! the other chaos suites (`DCO_CHAOS_SEED`, default `0xDC0DB`).

use dco::prelude::*;
use dco::store::netfault::{ConnFault, FaultProxy};
use dco::store::{replicate, serve, Client, ClientOptions, RetryPolicy, Store, StoreOptions};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Number of seeded client-path cases; keep in sync with the CI
/// chaos-net job.
const CASES: u64 = 128;

/// Seeded replication-path cases (each opens its own store pair, so
/// they are dearer than client cases).
const REPL_CASES: u64 = 16;

fn seed() -> u64 {
    std::env::var("DCO_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDC0DB)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dco-netchaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pairwise-disjoint unit interval `[3k, 3k+1]`.
fn unit(k: i128) -> GeneralizedRelation {
    GeneralizedRelation::from_raw(
        1,
        vec![
            RawAtom::new(Term::cst(rat(3 * k, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(3 * k + 1, 1))),
        ],
    )
}

/// Client options tuned for chaos: tight read timeout so stalls surface
/// fast, a single attempt so the raw typed outcome of the faulted
/// connection is what we observe (retries would paper over it — they
/// are exercised separately by the proxy's passthrough-after-fault
/// schedule in the replication cases).
fn chaos_client_opts() -> ClientOptions {
    ClientOptions {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Some(Duration::from_millis(400)),
        retry: RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        },
        ..ClientOptions::default()
    }
}

#[test]
fn every_injected_fault_is_a_typed_error_or_a_verified_correct_reply() {
    let dir = tmpdir("client");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    store.create("r", 1).unwrap();
    for k in 0..3 {
        store.insert("r", unit(k)).unwrap();
    }
    let expected = store.query("r(x)").unwrap();
    let handle = serve(store.clone(), "127.0.0.1:0").unwrap();

    let mut state = seed();
    let (mut ok, mut connect_err, mut query_err) = (0u64, 0u64, 0u64);
    for case in 0..CASES {
        let fault = ConnFault::seeded(&mut state);
        let proxy = FaultProxy::start(handle.addr().to_string(), vec![fault]).unwrap();
        let started = Instant::now();
        match Client::connect_with(&proxy.addr().to_string(), chaos_client_opts()) {
            // A typed failure during dial/handshake is a legitimate
            // outcome: the fault hit before the session existed.
            Err(e) => {
                connect_err += 1;
                let _ = e.to_string(); // typed and displayable
            }
            Ok(mut client) => match client.query("r(x)") {
                Ok(out) => {
                    assert_eq!(
                        out.relation, expected.relation,
                        "case {case} {fault:?}: reply delivered but WRONG"
                    );
                    ok += 1;
                }
                Err(e) => {
                    query_err += 1;
                    let _ = e.to_string();
                }
            },
        }
        // "Never a hang": every outcome must arrive well inside the
        // test harness's patience. The client's own timeouts are what
        // guarantee this; a case that blows this bound found a path
        // they don't cover.
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "case {case} {fault:?}: took {:?} — an unbounded wait escaped the timeouts",
            started.elapsed()
        );
        proxy.stop();
    }
    // The seeded schedule must actually exercise both worlds: clean (or
    // clean-enough) exchanges that verify correctness, and faults that
    // surface as typed errors.
    assert!(ok > 0, "no case completed a verified exchange");
    assert!(
        connect_err + query_err > 0,
        "no case surfaced a typed error — the proxy injected nothing?"
    );
    assert_eq!(ok + connect_err + query_err, CASES);

    handle.shutdown();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replication_through_a_faulty_network_converges_uncorrupted() {
    let mut state = seed() ^ 0xA5A5_A5A5;
    for case in 0..REPL_CASES {
        let fault = ConnFault::seeded(&mut state);
        let pdir = tmpdir(&format!("repl-p{case}"));
        let rdir = tmpdir(&format!("repl-r{case}"));
        let primary = Store::open(&pdir, StoreOptions::default()).unwrap();
        primary.create("r", 1).unwrap();
        for k in 0..6 {
            primary.insert("r", unit(k)).unwrap();
        }
        let phandle = serve(primary.clone(), "127.0.0.1:0").unwrap();

        // Only the first replica connection is faulted; the redial goes
        // through clean. Convergence therefore proves both halves: the
        // fault was *detected* (stall timeout, CRC reject, EOF — never
        // a silent wedge) and the resume-from-applied-seq protocol
        // repaired it.
        let proxy = FaultProxy::start(phandle.addr().to_string(), vec![fault]).unwrap();
        let replica = Store::open(&rdir, StoreOptions::default()).unwrap();
        let stream = replicate(replica.clone(), proxy.addr().to_string());
        let target = primary.read().seq;
        assert!(
            stream.wait_for_seq(target, Duration::from_secs(60)),
            "case {case} {fault:?}: replica wedged at {} of {target}",
            stream.last_applied()
        );
        // Zero tolerance for state corruption: whatever the wire did,
        // the replica's catalog is byte-for-byte the primary's. A
        // corrupted batch must have been rejected before apply, never
        // half-applied.
        assert_eq!(
            replica.read().db,
            primary.read().db,
            "case {case} {fault:?}: replica state diverged from primary"
        );
        assert_eq!(replica.read().seq, target);

        stream.shutdown();
        proxy.stop();
        phandle.shutdown();
        drop(replica);
        drop(primary);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&rdir);
    }
}
