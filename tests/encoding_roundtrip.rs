//! Encoding round-trips, with proptest-driven random databases: the §3
//! standard encoding, JSON interchange, the box compression, and the
//! integer homeomorphism.

use dco::encoding::{compress, decode, encode, integerize};
use dco::prelude::*;
use proptest::prelude::*;

/// Strategy: a random satisfiable unary relation from random interval
/// endpoints.
fn arb_unary() -> impl Strategy<Value = GeneralizedRelation> {
    prop::collection::vec(
        (-20i64..20, 1i64..8, prop::bool::ANY, prop::bool::ANY),
        0..6,
    )
    .prop_map(|spans| {
        let tuples = spans.into_iter().map(|(lo, len, strict_lo, strict_hi)| {
            let lo_op = if strict_lo { RawOp::Lt } else { RawOp::Le };
            let hi_op = if strict_hi { RawOp::Lt } else { RawOp::Le };
            GeneralizedTuple::from_raw(
                1,
                vec![
                    RawAtom::new(Term::cst(rat(lo as i128, 1)), lo_op, Term::var(0)),
                    RawAtom::new(Term::var(0), hi_op, Term::cst(rat((lo + len) as i128, 1))),
                ],
            )
            .pop()
            .expect("nonempty span")
        });
        GeneralizedRelation::from_tuples(1, tuples)
    })
}

/// Strategy: a random binary relation mixing boxes and wedges.
fn arb_binary() -> impl Strategy<Value = GeneralizedRelation> {
    prop::collection::vec(
        (-10i64..10, 1i64..5, -10i64..10, 1i64..5, prop::bool::ANY),
        0..5,
    )
    .prop_map(|parts| {
        let tuples = parts.into_iter().map(|(x, w, y, h, wedge)| {
            let mut raws = vec![
                RawAtom::new(Term::cst(rat(x as i128, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat((x + w) as i128, 1))),
                RawAtom::new(Term::cst(rat(y as i128, 1)), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat((y + h) as i128, 1))),
            ];
            if wedge {
                raws.push(RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)));
            }
            GeneralizedTuple::from_raw(2, raws).pop()
        });
        GeneralizedRelation::from_tuples(2, tuples.flatten())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn standard_encoding_roundtrips(rel in arb_unary()) {
        let db = Database::new(Schema::new().with("S", 1)).with("S", rel.clone());
        let back = decode(&encode(&db)).unwrap();
        prop_assert!(back.get("S").unwrap().equivalent(&rel));
    }

    #[test]
    fn json_roundtrips(rel in arb_binary()) {
        let db = Database::new(Schema::new().with("R", 2)).with("R", rel.clone());
        let json = dco::encoding::json::to_json(&db).unwrap();
        let back = dco::encoding::json::from_json(&json).unwrap();
        prop_assert!(back.get("R").unwrap().equivalent(&rel));
    }

    #[test]
    fn box_compression_is_lossless(rel in arb_binary()) {
        let c = compress(&rel);
        prop_assert!(c.to_relation().equivalent(&rel));
    }

    #[test]
    fn integerization_preserves_membership_structure(rel in arb_unary()) {
        let db = Database::new(Schema::new().with("S", 1)).with("S", rel.clone());
        let (idb, map) = integerize(&db);
        prop_assert!(dco::encoding::is_integer_defined(&idb));
        // forward-mapping the original relation gives the integerized one
        let fwd = if db.constants().is_empty() {
            rel.clone()
        } else {
            map.to_automorphism().apply_relation(&rel)
        };
        prop_assert!(fwd.equivalent(idb.get("S").unwrap()));
    }

    #[test]
    fn interval_set_roundtrips(rel in arb_unary()) {
        let ivs = IntervalSet::from_relation(&rel);
        prop_assert!(ivs.to_relation().equivalent(&rel));
    }
}

#[test]
fn encoding_size_is_the_declared_measure() {
    let db = Database::new(Schema::new().with("S", 1)).with(
        "S",
        GeneralizedRelation::from_points(1, vec![vec![rat(1, 1)], vec![rat(2, 1)]]),
    );
    assert_eq!(dco::encoding::encoded_size(&db), encode(&db).len());
}
