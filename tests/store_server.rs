//! Concurrent-server suite: N writers and M readers against one served
//! store, over real TCP.
//!
//! The isolation argument under test: every response is computed against
//! one immutable generation, so a reader can never observe a torn state.
//! The writers insert pairwise-disjoint unit intervals, which makes the
//! invariant *countable* — at generation `g` the relation holds exactly
//! `g - 1` disjoint tuples (seq 1 is the CREATE) — so any torn read or
//! lost write shows up as an off-by-one, not a heisenbug.

use dco::prelude::*;
use dco::store::{serve, Client, Store, StoreOptions};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dco-store-server-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The pairwise-disjoint unit interval `[3k, 3k+1]` — gaps of width 1
/// between intervals keep subsumption pruning from ever merging two.
fn unit(k: i128) -> GeneralizedRelation {
    GeneralizedRelation::from_raw(
        1,
        vec![
            RawAtom::new(Term::cst(rat(3 * k, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(3 * k + 1, 1))),
        ],
    )
}

#[test]
fn concurrent_writers_and_readers_are_snapshot_isolated() {
    const WRITERS: usize = 3;
    const WRITES_EACH: i128 = 8;
    const READERS: usize = 4;
    const READS_EACH: usize = 12;

    let dir = tmpdir("isolation");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    store.create("r", 1).unwrap();
    let handle = serve(store.clone(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut threads = Vec::new();
    for w in 0..WRITERS {
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connect");
            for i in 0..WRITES_EACH {
                let k = w as i128 * WRITES_EACH + i;
                let seq = client.insert("r", &unit(k)).expect("insert");
                assert!(seq >= 2, "writer acks carry the WAL seq");
            }
            client.close().expect("close");
        }));
    }
    for _ in 0..READERS {
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("reader connect");
            let mut last_generation = 0;
            for _ in 0..READS_EACH {
                let out = client.query("r(x)").expect("query");
                // Countable snapshot invariant: generation g ⇔ g−1 tuples.
                assert_eq!(
                    out.relation.tuples().len() as u64,
                    out.generation - 1,
                    "torn read: generation {} with {} tuples",
                    out.generation,
                    out.relation.tuples().len()
                );
                // Per-connection monotonicity: time never goes backwards.
                assert!(
                    out.generation >= last_generation,
                    "generation regressed {last_generation} -> {}",
                    out.generation
                );
                last_generation = out.generation;
            }
            client.close().expect("close");
        }));
    }
    for t in threads {
        t.join().expect("worker thread");
    }

    // Every write landed exactly once: 1 create + WRITERS×WRITES_EACH.
    let total = WRITERS as u64 * WRITES_EACH as u64;
    let generation = store.read();
    assert_eq!(generation.seq, 1 + total);
    assert_eq!(generation.db.get("r").unwrap().tuples().len() as u64, total);

    handle.shutdown();
    // The catalog survives a cold reopen with all concurrent writes.
    drop(store);
    let reopened = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(reopened.read().seq, 1 + total);
    assert_eq!(
        reopened.read().db.get("r").unwrap().tuples().len() as u64,
        total
    );
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cross-shard snapshot consistency: K writers each hammer their *own*
/// relation, deliberately chosen to live in K different shards, while
/// readers evaluate a union query spanning all of them. Shard states
/// are published in global commit order by a single leader at a time,
/// so every generation a reader observes is the catalog after a prefix
/// of the commit order — making the invariant countable across shards:
/// at generation `g` (after the K creates) the union holds exactly
/// `g - K` disjoint unit tuples. Any torn cross-shard publication shows
/// up as an off-by-one.
#[test]
fn disjoint_relation_writers_preserve_cross_shard_snapshots() {
    const WRITERS: usize = 4;
    const WRITES_EACH: i128 = 6;
    const READERS: usize = 3;
    const READS_EACH: usize = 10;
    const NSHARDS: usize = 8;

    let dir = tmpdir("crossshard");
    let store = Store::open(
        &dir,
        StoreOptions {
            shards: NSHARDS,
            ..StoreOptions::default()
        },
    )
    .unwrap();

    // Pick WRITERS relation names in pairwise-distinct shards (the
    // fingerprint is deterministic, so this search is too).
    let mut names: Vec<String> = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    for i in 0..64 {
        let cand = format!("s{i}");
        if used.insert(dco::store::shard_of(&cand, NSHARDS)) {
            names.push(cand);
            if names.len() == WRITERS {
                break;
            }
        }
    }
    assert_eq!(names.len(), WRITERS, "could not spread names over shards");
    for name in &names {
        store.create(name, 1).unwrap();
    }
    let union_query = names
        .iter()
        .map(|n| format!("{n}(x)"))
        .collect::<Vec<_>>()
        .join(" | ");

    let handle = serve(store.clone(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut threads = Vec::new();
    for (w, name) in names.iter().enumerate() {
        let name = name.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connect");
            for i in 0..WRITES_EACH {
                // Globally disjoint units across all writers.
                let k = w as i128 * WRITES_EACH + i;
                let seq = client.insert(&name, &unit(k)).expect("insert");
                assert!(seq > WRITERS as u64, "acks carry the WAL seq");
            }
            client.close().expect("close");
        }));
    }
    for _ in 0..READERS {
        let union_query = union_query.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("reader connect");
            let mut last_generation = 0;
            for _ in 0..READS_EACH {
                let out = client.query(&union_query).expect("query");
                // Countable cross-shard invariant: generation g ⇔ g − K
                // tuples, summed over K relations in K shards.
                assert_eq!(
                    out.relation.tuples().len() as u64,
                    out.generation - WRITERS as u64,
                    "torn cross-shard read at generation {}",
                    out.generation
                );
                assert!(out.generation >= last_generation, "time went backwards");
                last_generation = out.generation;
            }
            client.close().expect("close");
        }));
    }
    for t in threads {
        t.join().expect("worker thread");
    }

    let total = WRITERS as u64 * WRITES_EACH as u64;
    let generation = store.read();
    assert_eq!(generation.seq, WRITERS as u64 + total);
    for name in &names {
        assert_eq!(
            generation.db.get(name).unwrap().tuples().len() as u64,
            WRITES_EACH as u64,
            "lost writes on {name}"
        );
    }
    let stats = store.stats();
    assert_eq!(stats.commits, WRITERS as u64 + total);
    assert!(stats.commit_batch_max >= 1);
    assert!(
        stats.fsyncs <= stats.commits,
        "group commit may never fsync more than once per commit: {stats:?}"
    );

    handle.shutdown();
    drop(store);
    // Cold reopen: every acknowledged write on every shard survives.
    let reopened = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(reopened.read().seq, WRITERS as u64 + total);
    for name in &names {
        assert_eq!(
            reopened.read().db.get(name).unwrap().tuples().len() as u64,
            WRITES_EACH as u64
        );
    }
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prepared_cache_hits_are_structurally_identical_across_clients() {
    let dir = tmpdir("cache");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    store.create("r", 1).unwrap();
    for k in 0..4 {
        store.insert("r", unit(k)).unwrap();
    }
    let handle = serve(store.clone(), "127.0.0.1:0").unwrap();

    let query = "exists y . (r(x) & r(y) & x < y)";
    // Cold evaluation straight through the in-process path.
    let direct = store.query(query).unwrap();
    assert!(!direct.cached);

    // Two independent TCP clients: the first hit is served from the cache
    // warmed by the in-process query (same fingerprint, same generation);
    // both must be byte-for-byte the cold result.
    for _ in 0..2 {
        let mut client = Client::connect(handle.addr()).unwrap();
        let out = client.query(query).unwrap();
        assert!(out.cached, "expected a prepared-query cache hit");
        assert_eq!(out.generation, direct.generation);
        assert_eq!(out.columns, direct.columns);
        assert_eq!(
            out.relation, direct.relation,
            "cache hit diverged from cold eval"
        );
        client.close().unwrap();
    }

    // A write moves the generation: the same text becomes a cold query
    // again and the new cold result is again structurally cached.
    store.insert("r", unit(50)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let cold = client.query(query).unwrap();
    assert!(!cold.cached);
    let warm = client.query(query).unwrap();
    assert!(warm.cached);
    assert_eq!(warm.relation, cold.relation);
    client.close().unwrap();

    let stats = store.stats();
    assert!(stats.cache_hits >= 3, "stats lost hits: {stats:?}");
    handle.shutdown();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reactor soak: 1k simultaneous connections, several pipelined rounds,
/// every request answered exactly once, in order, well-framed. This is
/// the scale the thread-per-connection server could not hold open (it
/// gated admissions at the evaluator thread budget); the reactor keeps
/// all 1k established while the same small worker pool evaluates.
///
/// The soak doubles as the observability acceptance run: a probe client
/// scrapes `METRICS` between rounds and asserts the exposition parses,
/// counters only ever move forward, and the queue-wait histogram counts
/// exactly one sample per served request. A live replica rides along so
/// the replication-lag histogram fills too.
#[test]
fn soak_one_thousand_connections_each_request_gets_exactly_one_reply() {
    use dco::store::wire;

    const CONNS: usize = 1000;
    const ROUNDS: usize = 3;

    let dir = tmpdir("soak");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    store.create("r", 1).unwrap();
    store.insert("r", unit(0)).unwrap();
    let handle = serve(store.clone(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // A real replica keeps a replication stream attached for the whole
    // soak, so the reactor has a lag series to sample.
    let replica_dir = tmpdir("soak-replica");
    let replica_store = Store::open(&replica_dir, StoreOptions::default()).unwrap();
    let replica = dco::store::replicate(replica_store, addr.to_string());

    let mut socks: Vec<std::net::TcpStream> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let s = std::net::TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("connect #{i} refused: {e}"));
        s.set_read_timeout(Some(std::time::Duration::from_secs(60)))
            .unwrap();
        s.set_nodelay(true).unwrap();
        socks.push(s);
    }

    let line_for = |i: usize, round: usize| match (i + round) % 3 {
        0 => "PING",
        1 => "QUERY r(x)",
        _ => "STATS",
    };
    let mut probe = Client::connect(addr).unwrap();
    let mut last_requests = 0.0f64;
    for round in 0..ROUNDS {
        // Write phase: every connection sends before any reply is read,
        // so the server is holding ~1k outstanding requests at once.
        for (i, s) in socks.iter_mut().enumerate() {
            wire::write_frame(s, line_for(i, round)).expect("request write");
        }
        // Read phase: exactly one well-framed reply each, matching the
        // request that connection sent.
        for (i, s) in socks.iter_mut().enumerate() {
            let reply = wire::read_frame(s)
                .unwrap_or_else(|e| panic!("conn {i} round {round}: bad frame: {e}"))
                .unwrap_or_else(|| panic!("conn {i} round {round}: server hung up"));
            match (i + round) % 3 {
                0 => assert_eq!(reply, "OK pong", "conn {i} round {round}"),
                1 => {
                    assert!(reply.starts_with("OK {"), "conn {i}: {reply}");
                    let out = wire::query_output_from_json(&reply[3..]).expect("query json");
                    assert_eq!(out.relation.tuples().len(), 1);
                }
                _ => {
                    assert!(reply.starts_with("OK {"), "conn {i}: {reply}");
                    // Served STATS sees the whole herd connected.
                    let open = json_u64(&reply, "conns_open")
                        .unwrap_or_else(|| panic!("no conns_open in {reply}"));
                    assert!(open >= CONNS as u64, "only {open} connections open");
                }
            }
        }

        // Mid-run scrape: the exposition parses, the request counter is
        // monotone across rounds, and the queue-wait histogram counted
        // exactly one sample per request the workers dequeued — the two
        // are recorded at the same dequeue site, so any drift means a
        // request was dropped or double-counted.
        let text = probe
            .metrics()
            .unwrap_or_else(|e| panic!("round {round}: METRICS: {e}"));
        let requests = metric(&text, "dco_server_requests_total")
            .unwrap_or_else(|| panic!("round {round}: no dco_server_requests_total in scrape"));
        let waited = metric(&text, "dco_server_queue_wait_count").expect("queue_wait count");
        assert_eq!(
            requests, waited,
            "round {round}: queue-wait samples must equal served requests"
        );
        assert!(
            requests > last_requests,
            "round {round}: request counter regressed: {last_requests} -> {requests}"
        );
        // The herd's QUERY third of the round landed in the eval and
        // store-side query histograms too. The eval histogram records
        // *after* a request completes, so the in-flight scrape itself is
        // the one sample it may trail the request counter by.
        assert!(metric(&text, "dco_server_eval_count").unwrap_or(0.0) >= requests - 1.0);
        assert!(metric(&text, "dco_store_query_total_count").unwrap_or(0.0) > 0.0);
        last_requests = requests;
    }

    // No request was dropped or double-answered: an extra probe client
    // still gets a clean, in-sync connection.
    let stats = probe.stats().unwrap();
    let open = json_u64(&format!("OK {stats}"), "conns_open").expect("conns_open");
    assert!(open > CONNS as u64, "probe sees the herd: {open}");
    let total = json_u64(&format!("OK {stats}"), "conns_total").expect("conns_total");
    assert!(total > CONNS as u64);

    // The replica has been streaming all along: wait for it to catch up
    // to the primary's committed seq, then check the lag histogram saw
    // at least one sample (the reactor records it every tick a stream
    // is attached).
    let committed = store.read().seq;
    assert!(
        replica.wait_for_seq(committed, std::time::Duration::from_secs(30)),
        "replica never caught up to seq {committed}"
    );
    let text = probe.metrics().expect("final scrape");
    assert!(
        metric(&text, "dco_server_repl_lag_count").unwrap_or(0.0) > 0.0,
        "replication-lag histogram stayed empty with a live replica:\n{text}"
    );
    // Durability instrumentation: the WAL fsync histogram is non-empty
    // (the pre-soak CREATE/INSERT commits fsync with default options).
    assert!(
        metric(&text, "dco_store_wal_fsync_count").unwrap_or(0.0) > 0.0,
        "fsync histogram stayed empty under default (fsync on) options"
    );
    probe.close().unwrap();

    drop(socks);
    replica.shutdown();
    handle.shutdown();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// Pull one sample value out of a Prometheus text exposition: the line
/// `"<name> <value>"` with an exact name match (so `foo` never matches
/// `foo_count` or `foo_bucket{...}`).
fn metric(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

/// Pull an integer counter out of a compact-JSON reply.
fn json_u64(reply: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = reply.find(&pat)? + pat.len();
    let digits: String = reply[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[test]
fn more_clients_than_the_connection_cap_all_complete() {
    let dir = tmpdir("overcap");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    store.create("r", 1).unwrap();
    store.insert("r", unit(0)).unwrap();
    let handle = serve(store.clone(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // Far more simultaneous connections than effective_threads: excess
    // connections queue on the gate and must all eventually be served.
    let clients = eval_config().effective_threads().max(2) * 3;
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.ping().expect("ping");
                let out = c.query("r(x)").expect("query");
                assert_eq!(out.relation.tuples().len(), 1);
                c.close().expect("close");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    handle.shutdown();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Lifecycle-hardening acceptance: at ~4× sustainable load with
/// propagated deadlines, the server sheds with typed `OVERLOADED` /
/// `DEADLINE_EXCEEDED` instead of queueing doomed work, never answers
/// an accepted request meaningfully after its deadline, and the
/// requests it does accept keep flowing — goodput under overload stays
/// at or above 80% of the single-client baseline.
#[test]
fn overload_sheds_typed_and_keeps_goodput() {
    use dco::store::wire::QueryOpts;
    use dco::store::{ClientError, ClientOptions, RetryPolicy};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // Needs genuinely parallel workers for "sustainable load" to mean
    // anything; on a 1-CPU host everything serializes (same skip as the
    // store_conc bench family).
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    if host < 2 {
        eprintln!("skipping overload acceptance on a 1-CPU host");
        return;
    }

    let dir = tmpdir("overload");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    store.create("r", 1).unwrap();
    let handle = serve(store.clone(), "127.0.0.1:0").unwrap();
    let addr = handle.addr().to_string();

    // One attempt per request: retries would hide the typed sheds this
    // test exists to observe.
    let one_shot = ClientOptions {
        retry: RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        },
        ..ClientOptions::default()
    };

    // Every query is made unique by a vacuous upper bound (all data
    // lives far below it), defeating the prepared-query cache so each
    // request costs real evaluator time.
    let query_line = |n: u64| format!("r(x) & r(y) & x < y & x < {}", 1_000_000 + n);

    // Calibrate: grow the relation until one uncached self-join costs
    // at least ~8 ms, so a worker pool can actually saturate.
    let mut cal = Client::connect_with(&addr, one_shot).unwrap();
    let mut tuples = 24i128;
    let mut uniq = 0u64;
    for k in 0..tuples {
        store.insert("r", unit(k)).unwrap();
    }
    loop {
        let t0 = Instant::now();
        cal.query_with(&query_line(uniq), QueryOpts::none())
            .unwrap();
        uniq += 1;
        if t0.elapsed() >= Duration::from_millis(8) || tuples >= 768 {
            break;
        }
        for k in tuples..tuples * 2 {
            store.insert("r", unit(k)).unwrap();
        }
        tuples *= 2;
    }

    // Single-client baseline: sequential uncached queries, no deadline,
    // no contention. This also calibrates the server's EWMAs (job time
    // and ns-per-cost-unit), which the admission control projects from.
    const BASELINE_N: u64 = 20;
    let t0 = Instant::now();
    for _ in 0..BASELINE_N {
        cal.query_with(&query_line(uniq), QueryOpts::none())
            .unwrap();
        uniq += 1;
    }
    let baseline_elapsed = t0.elapsed();
    let baseline_qps = BASELINE_N as f64 / baseline_elapsed.as_secs_f64();
    let per_query_ms = (baseline_elapsed.as_millis() as u64 / BASELINE_N).max(1);
    cal.close().unwrap();

    // 4× sustainable load: four closed-loop clients per worker, each
    // request carrying a deadline of ~2 service times — tight enough
    // that queueing behind 2+ workers' worth of jobs is already fatal,
    // so the server must shed rather than serve everyone late.
    let workers = eval_config().effective_threads().max(2);
    let clients = (4 * workers).min(24);
    let deadline_ms = (2 * per_query_ms).max(15);
    const RUN: Duration = Duration::from_secs(3);
    // Grace on the client-observed latency of successful replies: the
    // guard aborts evaluation at the deadline, but what the client
    // clocks also includes reply serialization, transit, and its own
    // thread getting scheduled — so the grace scales with service time.
    // What it must still catch is the failure this test exists for: a
    // request quietly served seconds late instead of being shed.
    let late_cap = Duration::from_millis(deadline_ms + 500.max(4 * per_query_ms));

    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let expired = Arc::new(AtomicU64::new(0));
    let late = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let (ok, shed, expired, late) =
                (ok.clone(), shed.clone(), expired.clone(), late.clone());
            let line_base = 1_000_000u64 * (c as u64 + 1);
            std::thread::spawn(move || {
                let mut client = Client::connect_with(&addr, one_shot).expect("connect");
                let start = Instant::now();
                let mut i = 0u64;
                while start.elapsed() < RUN {
                    let line = format!("r(x) & r(y) & x < y & x < {}", 2_000_000 + line_base + i);
                    i += 1;
                    let sent = Instant::now();
                    match client.query_with(&line, QueryOpts::none().with_deadline_ms(deadline_ms))
                    {
                        Ok(_) => {
                            if sent.elapsed() > late_cap {
                                late.fetch_add(1, Ordering::Relaxed);
                            }
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Overloaded { retry_after_ms }) => {
                            assert!(retry_after_ms >= 1, "hint must be actionable");
                            shed.fetch_add(1, Ordering::Relaxed);
                            // A well-behaved client honors the hint
                            // (capped so the closed loop keeps pressure
                            // on the server for the whole run).
                            std::thread::sleep(Duration::from_millis(retry_after_ms.min(50)));
                        }
                        Err(ClientError::DeadlineExceeded(_)) => {
                            expired.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("untyped failure under overload: {e}"),
                    }
                }
                client.close().expect("close");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("overload client");
    }

    let (ok, shed, expired, late) = (
        ok.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
        expired.load(Ordering::Relaxed),
        late.load(Ordering::Relaxed),
    );
    let goodput_qps = ok as f64 / RUN.as_secs_f64();
    eprintln!(
        "overload: workers={workers} clients={clients} deadline={deadline_ms}ms \
         baseline={baseline_qps:.1}qps goodput={goodput_qps:.1}qps ok={ok} shed={shed} expired={expired}"
    );

    assert!(
        shed > 0,
        "4x load never triggered a typed OVERLOADED shed (ok={ok} expired={expired})"
    );
    assert_eq!(
        late, 0,
        "{late} accepted requests answered after deadline + grace"
    );
    assert!(
        goodput_qps >= 0.8 * baseline_qps,
        "goodput collapsed under overload: {goodput_qps:.1} qps vs baseline {baseline_qps:.1} qps"
    );

    // The server's own ledger agrees: sheds and expiries are counted.
    let mut c = Client::connect(handle.addr()).unwrap();
    let stats = c.stats().unwrap();
    assert!(
        stats.contains("\"shed_overload\""),
        "STATS must expose shed counters: {stats}"
    );
    c.close().unwrap();

    handle.shutdown();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
