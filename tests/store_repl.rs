//! Replication suite: primary→replica WAL streaming over real TCP.
//!
//! The consistency argument under test: a replica applies the primary's
//! sealed WAL records through the same validate→publish path as local
//! commits, so every generation a replica ever serves is a *prefix* of
//! the primary's commit order — a replica read is a snapshot-isolated
//! read of a slightly older primary. The suite covers the streaming
//! happy path, the checkpoint resync taken when a replica falls off the
//! primary's backlog ring, the read-fanout/write-pinning client with
//! replica failover, and the version handshake's typed refusal.

use dco::prelude::*;
use dco::store::{replicate, serve, wire, Client, ReplicaClient, Store, StoreOptions};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dco-store-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pairwise-disjoint unit interval `[3k, 3k+1]` (gaps keep subsumption
/// from merging adjacent inserts, so tuple counts stay countable).
fn unit(k: i128) -> GeneralizedRelation {
    GeneralizedRelation::from_raw(
        1,
        vec![
            RawAtom::new(Term::cst(rat(3 * k, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(3 * k + 1, 1))),
        ],
    )
}

const SYNC_WAIT: Duration = Duration::from_secs(30);

#[test]
fn replica_streams_the_primary_and_serves_snapshot_isolated_reads() {
    let pdir = tmpdir("stream-p");
    let rdir = tmpdir("stream-r");
    let primary = Store::open(&pdir, StoreOptions::default()).unwrap();
    primary.create("r", 1).unwrap();
    for k in 0..5 {
        primary.insert("r", unit(k)).unwrap();
    }
    let phandle = serve(primary.clone(), "127.0.0.1:0").unwrap();

    // The replica dials in mid-history and catches up.
    let replica = Store::open(&rdir, StoreOptions::default()).unwrap();
    let stream = replicate(replica.clone(), phandle.addr().to_string());
    assert!(
        stream.wait_for_seq(primary.read().seq, SYNC_WAIT),
        "replica never caught up: applied {} of {}",
        stream.last_applied(),
        primary.read().seq
    );
    assert_eq!(replica.read().db, primary.read().db);
    assert_eq!(replica.read().seq, primary.read().seq);

    // Live tail: new commits stream without a reconnect.
    for k in 5..12 {
        primary.insert("r", unit(k)).unwrap();
    }
    assert!(stream.wait_for_seq(primary.read().seq, SYNC_WAIT));
    assert_eq!(replica.read().db, primary.read().db);
    assert!(stream.is_connected(), "live tail must not redial");
    assert_eq!(stream.status().resyncs(), 0, "in-ring catch-up only");
    assert!(stream.status().bytes() > 0);

    // The replica serves reads over TCP at the replicated generation.
    let rhandle = serve(replica.clone(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(rhandle.addr()).unwrap();
    let out = client.query("r(x)").unwrap();
    assert_eq!(out.generation, primary.read().seq);
    assert_eq!(out.relation.tuples().len(), 12);
    client.close().unwrap();

    rhandle.shutdown();
    stream.shutdown();
    phandle.shutdown();
    drop(replica);
    drop(primary);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn checkpoint_resync_catches_up_a_replica_that_fell_off_the_backlog() {
    let pdir = tmpdir("ckpt-p");
    let rdir = tmpdir("ckpt-r");
    // A tiny backlog ring: anything that connects late is beyond
    // record-by-record catch-up and must take the checkpoint path.
    let primary = Store::open(
        &pdir,
        StoreOptions {
            repl_backlog: 4,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    primary.create("r", 1).unwrap();
    for k in 0..20 {
        primary.insert("r", unit(k)).unwrap();
    }
    let phandle = serve(primary.clone(), "127.0.0.1:0").unwrap();

    let replica = Store::open(&rdir, StoreOptions::default()).unwrap();
    let stream = replicate(replica.clone(), phandle.addr().to_string());
    assert!(
        stream.wait_for_seq(primary.read().seq, SYNC_WAIT),
        "replica stuck at {}",
        stream.last_applied()
    );
    assert!(
        stream.status().resyncs() >= 1,
        "a late replica against a 4-record ring must checkpoint-resync"
    );
    assert_eq!(replica.read().db, primary.read().db);
    assert_eq!(replica.read().seq, primary.read().seq);

    // After the checkpoint baseline, the live tail streams as records.
    let before = stream.status().batches();
    for k in 20..24 {
        primary.insert("r", unit(k)).unwrap();
    }
    assert!(stream.wait_for_seq(primary.read().seq, SYNC_WAIT));
    assert_eq!(replica.read().db, primary.read().db);
    assert!(
        stream.status().batches() > before,
        "post-checkpoint tail must arrive as record batches"
    );

    // The resynced replica survives a cold reopen at the same state.
    stream.shutdown();
    let expected = replica.read().db.clone();
    let expected_seq = replica.read().seq;
    drop(replica);
    let reopened = Store::open(&rdir, StoreOptions::default()).unwrap();
    assert_eq!(reopened.read().db, expected);
    assert_eq!(reopened.read().seq, expected_seq);

    phandle.shutdown();
    drop(reopened);
    drop(primary);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn replica_client_fans_reads_out_and_survives_a_killed_replica() {
    let pdir = tmpdir("fan-p");
    let r1dir = tmpdir("fan-r1");
    let r2dir = tmpdir("fan-r2");
    let primary = Store::open(&pdir, StoreOptions::default()).unwrap();
    let phandle = serve(primary.clone(), "127.0.0.1:0").unwrap();

    let replica1 = Store::open(&r1dir, StoreOptions::default()).unwrap();
    let replica2 = Store::open(&r2dir, StoreOptions::default()).unwrap();
    let stream1 = replicate(replica1.clone(), phandle.addr().to_string());
    let stream2 = replicate(replica2.clone(), phandle.addr().to_string());
    let r1handle = serve(replica1.clone(), "127.0.0.1:0").unwrap();
    let r2handle = serve(replica2.clone(), "127.0.0.1:0").unwrap();

    let mut router = ReplicaClient::new(
        phandle.addr().to_string(),
        vec![r1handle.addr().to_string(), r2handle.addr().to_string()],
    );

    // Writes pin to the primary: the seq acks come from its WAL.
    assert_eq!(router.create("t", 1).unwrap(), 1);
    for k in 0..6 {
        assert_eq!(router.insert("t", &unit(k)).unwrap(), 2 + k as u64);
    }
    assert_eq!(primary.read().seq, 7, "writes must land on the primary");
    for s in [&stream1, &stream2] {
        assert!(s.wait_for_seq(7, SYNC_WAIT), "replica lagging");
    }

    // Reads round-robin across both replicas; every answer is a full
    // snapshot at the replicated generation.
    for _ in 0..4 {
        let out = router.query("t(x)").unwrap();
        assert_eq!(out.generation, 7);
        assert_eq!(out.relation.tuples().len(), 6);
    }

    // Kill one replica server: reads fail over to the survivor.
    r1handle.shutdown();
    stream1.shutdown();
    for _ in 0..4 {
        let out = router.query("t(x)").unwrap();
        assert_eq!(out.relation.tuples().len(), 6);
    }

    // Kill the other too: reads fall back to the primary itself.
    r2handle.shutdown();
    stream2.shutdown();
    let out = router.query("t(x)").unwrap();
    assert_eq!(out.generation, 7);
    assert_eq!(out.relation.tuples().len(), 6);

    phandle.shutdown();
    drop(replica1);
    drop(replica2);
    drop(primary);
    for d in [&pdir, &r1dir, &r2dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn version_mismatch_is_a_typed_refusal_and_a_hangup() {
    let dir = tmpdir("vers");
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    let handle = serve(store.clone(), "127.0.0.1:0").unwrap();

    // A peer from a different protocol generation is told exactly what
    // both sides speak, then hung up on — before any frame could be
    // misparsed.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    wire::write_frame(&mut raw, "HELLO 999 1").unwrap();
    let reply = wire::read_frame(&mut raw).unwrap().expect("reply");
    assert!(
        reply.starts_with("ERR version mismatch"),
        "typed refusal expected, got: {reply}"
    );
    assert!(reply.contains("999"), "refusal names the peer's version");
    assert!(
        wire::read_frame(&mut raw).unwrap().is_none(),
        "server must close after a version mismatch"
    );

    // A wrong WAL codec version gets the same treatment.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    wire::write_frame(&mut raw, &format!("HELLO {} 99", wire::PROTOCOL_VERSION)).unwrap();
    let reply = wire::read_frame(&mut raw).unwrap().expect("reply");
    assert!(reply.starts_with("ERR version mismatch"), "got: {reply}");

    // The real client's handshake still goes through.
    let mut ok = Client::connect(handle.addr()).unwrap();
    ok.ping().unwrap();
    ok.close().unwrap();

    handle.shutdown();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
