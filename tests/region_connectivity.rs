//! Region connectivity end-to-end (Theorem 4.3 / 4.4): the two back-ends
//! agree on the instance families, the EF witnesses exist at low ranks,
//! and topology interacts correctly with connectivity.

use dco::ef::{ef_equivalent, encode_binary};
use dco::geo::instances::{bar, broken_staircase, scattered_boxes, staircase};
use dco::geo::region::Region;
use dco::geo::topology::{boundary, closure, interior};
use dco::geo::{component_count, is_connected, is_connected_via_datalog};

#[test]
fn backends_agree_on_families() {
    let cases: Vec<(Region, bool)> = vec![
        (staircase(2), true),
        (staircase(3), true),
        (broken_staircase(3, 0), false),
        (broken_staircase(4, 2), false),
        (bar(3), true),
        (scattered_boxes(3), false),
    ];
    for (region, expected) in cases {
        assert_eq!(is_connected(&region), expected);
        assert_eq!(is_connected_via_datalog(&region), expected);
    }
}

#[test]
fn component_counts() {
    assert_eq!(component_count(&staircase(4)), 1);
    assert_eq!(component_count(&broken_staircase(4, 1)), 2);
    assert_eq!(component_count(&scattered_boxes(5)), 5);
}

#[test]
fn ef_witness_at_rank_one() {
    // rank-1 sentences (one quantifier) cannot see connectivity:
    let good = staircase(4);
    let bad = broken_staircase(4, 1);
    let eg = encode_binary(good.relation()).unwrap();
    let eb = encode_binary(bad.relation()).unwrap();
    assert!(ef_equivalent(&eg, &eb, 1));
    assert!(is_connected(&good));
    assert!(!is_connected(&bad));
}

#[test]
fn closure_can_connect() {
    // two open boxes sharing a missing edge: disconnected, but their
    // closure is connected.
    let r = Region::open_box(0, 1, 0, 1).union(&Region::open_box(1, 2, 0, 1));
    assert!(!is_connected(&r));
    assert!(is_connected(&closure(&r)));
}

#[test]
fn interior_can_disconnect() {
    // two closed boxes sharing one corner: connected, but the interior
    // splits into two open boxes.
    let r = Region::closed_box(0, 1, 0, 1).union(&Region::closed_box(1, 2, 1, 2));
    assert!(is_connected(&r));
    let int = interior(&r);
    assert!(!is_connected(&int));
    assert_eq!(component_count(&int), 2);
}

#[test]
fn boundary_of_staircase_is_disjoint_from_interior() {
    let s = staircase(2);
    let bd = boundary(&s);
    let int = interior(&s);
    assert!(bd.intersect(&int).is_empty());
    // and together with the interior they cover the closure
    let cover = bd.union(&int);
    assert!(cover.equivalent(&closure(&s)));
}

#[test]
fn connectivity_is_automorphism_invariant() {
    use dco::core::automorphism::Automorphism;
    use dco::prelude::*;
    let r = broken_staircase(3, 0);
    let f = Automorphism::from_anchors(vec![
        (rat(0, 1), rat(-5, 1)),
        (rat(3, 1), rat(0, 1)),
        (rat(6, 1), rat(1, 2)),
    ])
    .unwrap();
    let img = Region::from_relation(f.apply_relation(r.relation()));
    assert_eq!(is_connected(&r), is_connected(&img));
    assert_eq!(component_count(&r), component_count(&img));
}
