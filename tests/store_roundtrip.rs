//! Codec round-trip property suite: the store's binary records and the
//! JSON interchange must both be *exact* inverses — `decode ∘ encode`
//! is the identity up to structural equality, not mere set equivalence.
//!
//! §3 of the paper makes the standard encoding the data-complexity input
//! measure; a lossy or normalizing round trip would silently change that
//! measure between a write and the recovery that replays it. Stored
//! relations are already canonical (construction normalizes and prunes),
//! so exactness is achievable — and this suite demands it over 128
//! seeded random instances per property, plus the degenerate corners
//! (empty relations, unsatisfiable tuples, zero columns).

use dco::encoding::{
    lin_tuple_from_json, lin_tuple_to_json, relation_from_json_str, relation_to_json_str,
};
use dco::linear::{LinAtom, LinTuple};
use dco::prelude::*;
use dco::store::codec::{
    decode_lin_tuple_record, decode_relation_record, encode_lin_tuple_record,
    encode_relation_record, get_database, put_database, ByteReader, ByteWriter,
};
use proptest::prelude::*;

/// A random exact rational with a small denominator — exercises the
/// "never a float" half of the codec contract.
fn arb_rat() -> impl Strategy<Value = Rational> {
    (-40i64..40, 1i64..12).prop_map(|(n, d)| rat(n as i128, d as i128))
}

/// A random satisfiable-or-empty relation of the given arity, built from
/// random atoms over variables and rational constants. Construction goes
/// through `from_tuples`, so the result is canonical by invariant.
fn arb_relation(arity: u32) -> impl Strategy<Value = GeneralizedRelation> {
    let atom = (0..arity, 0..arity, 0u8..4, arb_rat(), prop::bool::ANY).prop_map(
        move |(v, w, op, c, vs_const)| {
            let op = match op {
                0 => RawOp::Lt,
                1 => RawOp::Le,
                2 => RawOp::Eq,
                _ => RawOp::Ge,
            };
            if vs_const || v == w {
                RawAtom::new(Term::var(v), op, Term::cst(c))
            } else {
                RawAtom::new(Term::var(v), op, Term::var(w))
            }
        },
    );
    prop::collection::vec(prop::collection::vec(atom, 0..5), 0..5).prop_map(move |tuples| {
        GeneralizedRelation::from_tuples(
            arity,
            tuples
                .into_iter()
                .flat_map(|raws| GeneralizedTuple::from_raw(arity, raws)),
        )
    })
}

/// A random linear tuple: dense rational coefficient rows with a
/// guaranteed nonzero pivot, so every atom normalizes to a real atom.
fn arb_lin_tuple() -> impl Strategy<Value = LinTuple> {
    let atom = (
        1i64..8,
        1i64..5,
        prop::collection::vec(arb_rat(), 2),
        arb_rat(),
        0u8..3,
    )
        .prop_map(|(pn, pd, rest, c, op)| {
            let op = match op {
                0 => CompOp::Lt,
                1 => CompOp::Le,
                _ => CompOp::Eq,
            };
            let mut coeffs = vec![rat(pn as i128, pd as i128)];
            coeffs.extend(rest);
            LinAtom::new(coeffs, c, op)
        });
    prop::collection::vec(atom, 0..5).prop_map(|atoms| LinTuple::from_atoms(3, atoms))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binary_codec_is_identity_on_relations(rel in arb_relation(2)) {
        let bytes = encode_relation_record(&rel);
        let back = decode_relation_record(&bytes).unwrap();
        prop_assert_eq!(back, rel);
    }

    #[test]
    fn binary_codec_is_identity_on_unary_relations(rel in arb_relation(1)) {
        let back = decode_relation_record(&encode_relation_record(&rel)).unwrap();
        prop_assert_eq!(back, rel);
    }

    #[test]
    fn json_is_identity_on_relations(rel in arb_relation(2)) {
        let back = relation_from_json_str(&relation_to_json_str(&rel)).unwrap();
        prop_assert_eq!(back, rel);
    }

    #[test]
    fn binary_codec_is_identity_on_lin_tuples(t in arb_lin_tuple()) {
        let back = decode_lin_tuple_record(&encode_lin_tuple_record(&t)).unwrap();
        prop_assert_eq!(back.fingerprint(), t.fingerprint());
        prop_assert_eq!(back, t);
    }

    #[test]
    fn json_is_identity_on_lin_tuples(t in arb_lin_tuple()) {
        let back = lin_tuple_from_json(&lin_tuple_to_json(&t)).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn catalog_codec_is_identity(r in arb_relation(2), s in arb_relation(1)) {
        let db = Database::new(Schema::new().with("r", 2).with("s", 1).with("zero", 3))
            .with("r", r)
            .with("s", s);
        let mut w = ByteWriter::new();
        put_database(&mut w, &db);
        let bytes = w.into_bytes();
        let back = get_database(&mut ByteReader::new(&bytes)).unwrap();
        prop_assert_eq!(back, db);
    }

    #[test]
    fn corrupting_any_byte_is_detected(rel in arb_relation(2), flip in 0usize..4096, bit in 0u8..8) {
        let mut bytes = encode_relation_record(&rel);
        let idx = flip % bytes.len();
        bytes[idx] ^= 1 << bit;
        // Either the corruption is detected, or (only when the flip is in
        // the length header making the record look short) it reads as torn.
        // A successful decode of corrupted bytes would be a checksum hole.
        prop_assert!(decode_relation_record(&bytes).is_err());
    }
}

#[test]
fn empty_and_unsat_corners_roundtrip_exactly() {
    // Empty relation: no tuples at all.
    for arity in [0u32, 1, 2, 5] {
        let rel = GeneralizedRelation::empty(arity);
        assert_eq!(
            decode_relation_record(&encode_relation_record(&rel)).unwrap(),
            rel
        );
        assert_eq!(
            relation_from_json_str(&relation_to_json_str(&rel)).unwrap(),
            rel
        );
    }
    // A relation built only from unsatisfiable tuples prunes to empty —
    // and the *pruned* (canonical) form is what round-trips.
    let unsat = GeneralizedRelation::from_raw(
        1,
        vec![
            RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(rat(0, 1))),
            RawAtom::new(Term::var(0), RawOp::Gt, Term::cst(rat(1, 1))),
        ],
    );
    assert!(unsat.is_empty());
    assert_eq!(
        decode_relation_record(&encode_relation_record(&unsat)).unwrap(),
        unsat
    );
    // The universal relation (one top tuple, no atoms).
    let top = GeneralizedRelation::from_tuples(2, vec![GeneralizedTuple::top(2)]);
    assert_eq!(
        decode_relation_record(&encode_relation_record(&top)).unwrap(),
        top
    );
    assert_eq!(
        relation_from_json_str(&relation_to_json_str(&top)).unwrap(),
        top
    );
    // Empty linear tuple (no constraints = all of Q³).
    let t = LinTuple::from_atoms(3, vec![]);
    assert_eq!(
        decode_lin_tuple_record(&encode_lin_tuple_record(&t)).unwrap(),
        t
    );
    assert_eq!(lin_tuple_from_json(&lin_tuple_to_json(&t)).unwrap(), t);
}
