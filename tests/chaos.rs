//! Chaos property suite for the guard layer (`dco_core::guard`).
//!
//! Drives every evaluator through the deterministic fault-injection
//! harness: a seeded case generator arms one synthetic fault — overflow,
//! panic, delay, or cancellation — at the Nth probe hit of one probe site,
//! then asserts the guard layer's core invariant for every case:
//!
//! > A guarded evaluation either returns a result **identical** to the
//! > unguarded run, or a **typed** [`GuardError`] — never a process
//! > abort, never a wedged thread, never a poisoned memo cache.
//!
//! The suite is fully deterministic: cases derive from a fixed seed via a
//! splitmix-style generator (override with `DCO_CHAOS_SEED` to explore
//! other trajectories; CI pins the default). The paper's closed-form
//! evaluation gives the strong half of the contract — *fault-free* guarded
//! runs must be structurally identical, not merely equivalent-modulo-
//! timeout, because probes observe and never alter the computation.

use dco::core::guard::faults::{injection_enabled, FaultPlan, InjectedFault};
use dco::prelude::*;
use std::time::{Duration, Instant};

/// Number of seeded injection cases; keep in sync with the CI chaos job.
const CASES: u64 = 128;

/// Per-case wall-clock ceiling: the armed delay (50 ms) plus the deadline
/// (25 ms) plus the acceptance margin of one second.
const CASE_CEILING: Duration = Duration::from_secs(5);

const DELAY: Duration = Duration::from_millis(50);
const DELAY_DEADLINE: Duration = Duration::from_millis(25);

/// Sites each scenario's evaluation actually reaches (measured; a plan
/// armed on an unreached site never fires and the run must then complete
/// with the exact baseline result — also worth testing, via `None`).
fn site_pool(s: Scenario) -> &'static [Option<ProbeSite>] {
    match s {
        Scenario::Fo => &[
            Some(ProbeSite::DnfInsert),
            Some(ProbeSite::QuantifierElim),
            None,
        ],
        Scenario::Linear => &[Some(ProbeSite::FourierMotzkin), None],
        Scenario::Datalog => &[
            Some(ProbeSite::DnfInsert),
            Some(ProbeSite::FixpointStage),
            None,
        ],
        Scenario::Geo => &[Some(ProbeSite::CellSplit), Some(ProbeSite::DnfInsert), None],
    }
}

fn seed() -> u64 {
    std::env::var("DCO_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDC0DB)
}

/// splitmix64: tiny, deterministic, and good enough to scatter cases.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fo_db() -> Database {
    let r = GeneralizedRelation::from_points(
        2,
        vec![
            vec![rat(1, 1), rat(2, 1)],
            vec![rat(2, 1), rat(3, 1)],
            vec![rat(3, 1), rat(1, 1)],
        ],
    );
    Database::new(Schema::new().with("R", 2)).with("R", r)
}

fn datalog_db() -> Database {
    let e = GeneralizedRelation::from_points(
        2,
        (1..6)
            .map(|i| vec![rat(i, 1), rat(i + 1, 1)])
            .collect::<Vec<_>>(),
    );
    Database::new(Schema::new().with("e", 2)).with("e", e)
}

const FO_SRC: &str = "exists y . (R(x, y) & !(exists z . (R(y, z) & z < x)))";
const LIN_SRC: &str = "forall x y . (x < y -> exists m . (m + m = x + y & x < m & m < y))";
const DATALOG_SRC: &str = "tc(x, y) :- e(x, y).\ntc(x, y) :- tc(x, z), e(z, y).\n";

#[derive(Clone, Copy, Debug)]
enum Scenario {
    Fo,
    Linear,
    Datalog,
    Geo,
}

const SCENARIOS: [Scenario; 4] = [
    Scenario::Fo,
    Scenario::Linear,
    Scenario::Datalog,
    Scenario::Geo,
];

/// Two disjoint closed boxes: cell decomposition plus union-find, i.e. the
/// Theorem 4.3 query. Exercises the `CellSplit` probe site.
fn geo_region() -> dco::geo::Region {
    dco::geo::Region::closed_box(0, 1, 0, 1).union(&dco::geo::Region::closed_box(3, 4, 3, 4))
}

/// Run one scenario under `limits`; `Ok(true)` means the guarded result is
/// structurally identical to the unguarded baseline.
fn run_scenario(s: Scenario, limits: GuardLimits) -> Result<bool, GuardError> {
    match s {
        Scenario::Fo => {
            let db = fo_db();
            let formula = parse_formula(FO_SRC).expect("fo scenario parses");
            let baseline = dco::fo::eval(&db, &formula).expect("fo baseline");
            match dco::fo::try_eval_with(&db, &formula, limits) {
                Ok(g) => Ok(g.value.relation.equivalent(&baseline.relation)
                    && g.value.columns == baseline.columns),
                Err(dco::fo::TryEvalError::Fault(f)) => Err(f),
                Err(e) => panic!("fo scenario is semantically valid, got {e}"),
            }
        }
        Scenario::Linear => {
            let db = Database::new(Schema::new());
            let formula = parse_formula(LIN_SRC).expect("linear scenario parses");
            let baseline = eval_linear(&db, &formula).expect("linear baseline");
            match dco::linear::try_eval_linear_with(&db, &formula, limits) {
                Ok(g) => Ok(g.value.as_bool() == baseline.as_bool()),
                Err(dco::linear::TryLinEvalError::Fault(f)) => Err(f),
                Err(e) => panic!("linear scenario is semantically valid, got {e}"),
            }
        }
        Scenario::Datalog => {
            let db = datalog_db();
            let program = parse_program(DATALOG_SRC).expect("datalog scenario parses");
            let baseline = run_datalog(&program, &db).expect("datalog baseline");
            match dco::datalog::try_run_with(
                &program,
                &db,
                &dco::datalog::EngineConfig::default(),
                limits,
            ) {
                Ok(g) => Ok(g.value.database.equivalent(&baseline.database)
                    && g.value.stats.stages == baseline.stats.stages),
                Err(dco::datalog::TryRunError::Fault(f)) => Err(f),
                Err(e) => panic!("datalog scenario is semantically valid, got {e}"),
            }
        }
        Scenario::Geo => {
            let region = geo_region();
            let baseline = dco::geo::component_count(&region);
            match run_guarded(limits, || dco::geo::component_count(&region)) {
                Ok(g) => Ok(g.value == baseline),
                Err(f) => Err(f),
            }
        }
    }
}

/// Fault-free guarded runs must be structurally identical to unguarded
/// runs: probes observe, they never alter the computation.
#[test]
fn fault_free_guarded_runs_match_unguarded() {
    for s in SCENARIOS {
        let identical = run_scenario(s, GuardLimits::none())
            .unwrap_or_else(|f| panic!("{s:?} must not fault without limits: {f}"));
        assert!(identical, "{s:?}: guarded result diverged from unguarded");
    }
}

/// The 128-case seeded injection sweep: every (scenario × site × fault ×
/// Nth-hit) combination the generator lands on must either finish with the
/// exact unguarded result or trip a typed fault — and do so promptly.
#[test]
fn seeded_injection_sweep() {
    if !injection_enabled() {
        eprintln!(
            "fault injection compiled out (release without the fault-injection feature); skipping"
        );
        return;
    }
    let mut state = seed();
    let mut outcomes = [0u64; 3]; // [identical result, typed fault, fault never fired]
    for case in 0..CASES {
        let s = SCENARIOS[(splitmix(&mut state) % SCENARIOS.len() as u64) as usize];
        let pool = site_pool(s);
        let site = pool[(splitmix(&mut state) % pool.len() as u64) as usize];
        let fault = match splitmix(&mut state) % 4 {
            0 => InjectedFault::Overflow,
            1 => InjectedFault::Panic,
            2 => InjectedFault::Delay(DELAY),
            _ => InjectedFault::Cancel,
        };
        let at = 1 + splitmix(&mut state) % 8;
        let plan = FaultPlan::new(site, at, fault);
        let mut limits = GuardLimits::none().with_fault(plan);
        if matches!(fault, InjectedFault::Delay(_)) {
            // A delay only becomes a fault through a deadline.
            limits = limits.with_deadline(DELAY_DEADLINE);
        }
        let plan_ref = limits.fault_plan.clone().expect("armed");

        let started = Instant::now();
        let outcome = run_scenario(s, limits);
        let elapsed = started.elapsed();
        assert!(
            elapsed < CASE_CEILING,
            "case {case} ({s:?} {site:?} {fault:?}@{at}) took {elapsed:?}: wedged?"
        );

        match outcome {
            Ok(identical) => {
                assert!(
                    identical,
                    "case {case} ({s:?} {site:?} {fault:?}@{at}): survived injection \
                     but result diverged from the unguarded baseline"
                );
                // An injected overflow always unwinds; surviving it means
                // the plan cannot have fired.
                if matches!(fault, InjectedFault::Overflow) {
                    assert!(
                        !plan_ref.has_fired(),
                        "case {case}: overflow fired yet evaluation succeeded"
                    );
                }
                outcomes[if plan_ref.has_fired() { 0 } else { 2 }] += 1;
            }
            Err(f) => {
                // Typed fault: the kind must be consistent with what was
                // armed (or with the deadline the delay case sets).
                let ok = match fault {
                    InjectedFault::Overflow => {
                        matches!(f.kind, GuardErrorKind::Overflow(_))
                    }
                    InjectedFault::Panic => matches!(
                        f.kind,
                        GuardErrorKind::WorkerPanicked(_) | GuardErrorKind::Cancelled
                    ),
                    InjectedFault::Delay(_) => {
                        matches!(f.kind, GuardErrorKind::DeadlineExceeded { .. })
                    }
                    InjectedFault::Cancel => matches!(f.kind, GuardErrorKind::Cancelled),
                };
                assert!(
                    ok,
                    "case {case} ({s:?} {site:?} {fault:?}@{at}): unexpected fault kind {:?}",
                    f.kind
                );
                assert!(
                    f.stats.probes > 0,
                    "case {case}: fault carries no progress stats"
                );
                outcomes[1] += 1;
            }
        }
    }
    // The sweep is only meaningful if both halves of the invariant are
    // actually exercised.
    assert!(outcomes[1] > 0, "no case tripped a fault: {outcomes:?}");
    assert!(
        outcomes[0] + outcomes[2] > 0,
        "no case completed: {outcomes:?}"
    );
    eprintln!(
        "chaos sweep (seed {:#x}): {} identical-after-fire, {} typed faults, {} never fired",
        seed(),
        outcomes[0],
        outcomes[1],
        outcomes[2]
    );
}

/// Satellite (c): an aborted evaluation must not poison the satisfiability
/// memo cache. Inject a mid-fixpoint cancellation, then re-run on the same
/// (warm, partially-populated) cache and compare against a cold-cache run.
#[test]
fn aborted_evaluation_leaves_memo_cache_consistent() {
    if !injection_enabled() {
        return;
    }
    let db = datalog_db();
    let program = parse_program(DATALOG_SRC).expect("parses");

    reset_sat_cache();
    let plan = FaultPlan::new(Some(ProbeSite::FixpointStage), 2, InjectedFault::Cancel);
    let aborted = dco::datalog::try_run_with(
        &program,
        &db,
        &dco::datalog::EngineConfig::default(),
        GuardLimits::none().with_fault(plan),
    );
    assert!(
        matches!(
            aborted,
            Err(dco::datalog::TryRunError::Fault(GuardError {
                kind: GuardErrorKind::Cancelled,
                ..
            }))
        ),
        "mid-fixpoint cancellation must trip: {aborted:?}"
    );

    // Warm run on whatever the aborted evaluation left in the cache.
    let warm = run_datalog(&program, &db).expect("warm run");
    // Cold run with the cache wiped.
    reset_sat_cache();
    let cold = run_datalog(&program, &db).expect("cold run");
    assert!(
        warm.database.equivalent(&cold.database),
        "aborted evaluation poisoned the memo cache"
    );
    assert_eq!(warm.stats.stages, cold.stats.stages);
}

/// A cancellation token fired from another thread terminates a guarded
/// fixpoint promptly with the typed `Cancelled` fault.
#[test]
fn external_cancellation_terminates_promptly() {
    let db = datalog_db();
    let program = parse_program(DATALOG_SRC).expect("parses");
    // Arm a delay so the evaluation is still in flight when the token
    // fires; without injection support just exercise the token path on a
    // completed evaluation.
    let guard = EvalGuard::new(GuardLimits::none());
    let token = guard.cancel_token();
    token.cancel();
    let started = Instant::now();
    let out = dco::core::guard::run_with_guard(guard, || dco::datalog::run(&program, &db));
    assert!(
        matches!(
            out,
            Err(GuardError {
                kind: GuardErrorKind::Cancelled,
                ..
            })
        ),
        "pre-cancelled guard must trip at the first probe"
    );
    assert!(started.elapsed() < CASE_CEILING);
}
