//! Theorem 4.4's capture machinery, end-to-end: a PTIME relational query
//! computed by inflationary Datalog¬ over the *integer order encoding* of
//! a rational dense-order database, with the answer mapped back — the
//! constructive content of "Datalog¬ = PTIME over dense-order databases".

use dco::encoding::integerize;
use dco::prelude::*;

/// A rational-constant edge relation (a path through non-integer points).
fn rational_path(n: usize) -> Database {
    let e = GeneralizedRelation::from_points(
        2,
        (0..n - 1)
            .map(|i| {
                vec![
                    rat(2 * i as i128 + 1, 3), // (2i+1)/3
                    rat(2 * (i as i128 + 1) + 1, 3),
                ]
            })
            .collect::<Vec<_>>(),
    );
    Database::new(Schema::new().with("e", 2)).with("e", e)
}

#[test]
fn tc_through_the_integer_encoding() {
    let program = parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .unwrap();
    for n in [3usize, 5] {
        let db = rational_path(n);
        // direct run on the rational database
        let direct = run_datalog(&program, &db)
            .unwrap()
            .database
            .get("tc")
            .unwrap()
            .clone();
        // run on the integer encoding, decode back
        let (idb, map) = integerize(&db);
        assert!(dco::encoding::is_integer_defined(&idb));
        let encoded_run = run_datalog(&program, &idb)
            .unwrap()
            .database
            .get("tc")
            .unwrap()
            .clone();
        let decoded = map.inverse().to_automorphism().apply_relation(&encoded_run);
        assert!(
            decoded.equivalent(&direct),
            "n={n}: capture round-trip differs"
        );
    }
}

#[test]
fn fixpoint_stage_count_is_polynomial() {
    // stages grow linearly in path length (naive TC): the PTIME bound of
    // Theorem 4.4's easy direction, observed.
    let program = parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .unwrap();
    let mut stages = Vec::new();
    for n in [3usize, 5, 7, 9] {
        let db = rational_path(n);
        stages.push(run_datalog(&program, &db).unwrap().stats.stages);
    }
    // monotone, and bounded by n (not exponential)
    assert!(stages.windows(2).all(|w| w[0] <= w[1]));
    assert!(*stages.last().unwrap() <= 10);
}

#[test]
fn order_queries_survive_the_encoding() {
    // FO query agreement across the homeomorphism (the "harmless
    // restriction" remark of §4).
    let db = rational_path(4);
    let f = parse_formula("exists y . e(x, y)").unwrap();
    let direct = eval_fo(&db, &f).unwrap().relation;
    let (idb, map) = integerize(&db);
    let encoded = eval_fo(&idb, &f).unwrap().relation;
    let back = map.inverse().to_automorphism().apply_relation(&encoded);
    assert!(back.equivalent(&direct));
}

#[test]
fn parity_through_the_encoding() {
    use dco::datalog::programs::cardinality_is_even;
    // parity of a rational-constant set computed on its integer twin
    let s = GeneralizedRelation::from_points(
        1,
        vec![vec![rat(1, 3)], vec![rat(1, 2)], vec![rat(5, 7)]],
    );
    let db = Database::new(Schema::new().with("s", 1)).with("s", s.clone());
    let (idb, _) = integerize(&db);
    let direct = cardinality_is_even(&s).unwrap();
    let encoded = cardinality_is_even(idb.get("s").unwrap()).unwrap();
    assert_eq!(direct, encoded);
    assert!(!direct); // |s| = 3
}
